"""Online losslessness: churn-proof, bit-identical adapter updates.

The offline losslessness suite shows joint scheduled training matches
sequential training.  This suite raises the bar to the *online* system:
a job submitted mid-stream to the orchestrator -- with other jobs
arriving, training, and retiring around it, windows replanned every few
batches, and junction no-ops spliced in -- must produce adapter weights
**identical (atol=0)** to training that job alone via
:func:`repro.baselines.sequential.train_job_sequentially`.  The engine's
exact-accumulation mode makes that possible: gradients are computed per
sample and folded in sample-index order at step time, so the schedule's
packing and interleaving choices cannot perturb a single bit.
"""

import numpy as np
import pytest

from repro.baselines import train_job_sequentially
from repro.core.lora import LoRAConfig
from repro.data.dataset import FinetuneDataset, Sample
from repro.models import TINY, TinyLoRATransformer
from repro.runtime import MultiLoRAEngine, NumericJob
from repro.scheduler import AdapterJob, SchedulerConfig, find_violations
from repro.serve import (
    NumericExecutor,
    OnlineOrchestrator,
    OrchestratorConfig,
    ServeJob,
    SlotAdmission,
)

MODEL_SEED = 11


def make_serve_job(rng, adapter_id, rank, num_samples, gbs, arrival):
    streams = [
        rng.integers(0, TINY.vocab_size, int(rng.integers(4, 12)))
        for _ in range(num_samples)
    ]
    numeric = NumericJob(
        adapter_id=adapter_id,
        lora=LoRAConfig(rank=rank, alpha=1.0, dropout=0.0,
                        adapter_id=adapter_id),
        token_streams=streams,
        global_batch_size=gbs,
    )
    dataset = FinetuneDataset(
        adapter_id, [Sample(adapter_id, i, len(t)) for i, t in enumerate(streams)]
    )
    return ServeJob(
        job=AdapterJob(adapter_id, dataset, gbs),
        arrival_time=arrival,
        numeric=numeric,
    )


def churn_workload():
    """Four tenants: two early, the probe mid-stream, one late.

    Arrival times are in the numeric executor's token clock; the early
    jobs are training when the probe (adapter 1) arrives, and they retire
    while it is still running; adapter 3 arrives near the end.
    """
    rng = np.random.default_rng(0)
    return [
        make_serve_job(rng, 0, 2, 6, 2, arrival=0.0),
        make_serve_job(rng, 2, 3, 6, 3, arrival=0.0),
        make_serve_job(rng, 1, 2, 8, 2, arrival=60.0),  # the probe
        make_serve_job(rng, 3, 2, 4, 2, arrival=250.0),
    ]


def run_online(workload, num_stages=2, window=1, slots=3):
    model = TinyLoRATransformer(TINY, np.random.default_rng(MODEL_SEED))
    engine = MultiLoRAEngine(model, exact_accumulation=True)
    config = OrchestratorConfig(
        scheduler=SchedulerConfig(capacity=64, padding_multiple=1,
                                  num_stages=num_stages, use_milp=False,
                                  group_size=2),
        window_batches=window,
        admission=SlotAdmission(slots),
    )
    orchestrator = OnlineOrchestrator(NumericExecutor(engine), config)
    result = orchestrator.run(workload)
    return model, engine, orchestrator, result


class TestOnlineLosslessness:
    @pytest.fixture(scope="class")
    def served(self):
        workload = churn_workload()
        model, engine, orchestrator, result = run_online(workload)
        return workload, model, engine, orchestrator, result

    def test_zero_violations_on_spliced_stream(self, served):
        _, _, _, orchestrator, result = served
        assert result.violations == 0
        assert find_violations(orchestrator.stream, 2) == []

    def test_run_actually_churns(self, served):
        workload, _, _, orchestrator, result = served
        # The probe shares at least one microbatch with another tenant...
        assert any(
            mb.num_adapters > 1
            and 1 in {a.adapter_id for a in mb.assignments}
            for mb in orchestrator.stream
        )
        # ...jobs arrived at three distinct times and replanning happened
        # across many waves.
        assert result.replans > 3
        arrivals = {job.arrival_time for job in workload}
        assert len(arrivals) == 3
        # Early tenants finished before the probe (they retired under it).
        probe = result.records[1]
        assert result.records[0].finish_time < probe.finish_time
        assert result.records[2].finish_time < probe.finish_time

    def test_mid_stream_job_weights_bit_identical_to_sequential(self, served):
        workload, model, _, _, _ = served
        probe = next(job for job in workload if job.adapter_id == 1)
        reference = TinyLoRATransformer(TINY, np.random.default_rng(MODEL_SEED))
        train_job_sequentially(reference, probe.numeric)
        online_params = model.adapter_state(1)
        solo_params = reference.adapter_state(1)
        for key in online_params:
            assert np.array_equal(online_params[key].a, solo_params[key].a)
            assert np.array_equal(online_params[key].b, solo_params[key].b)

    def test_every_tenant_bit_identical_to_sequential(self, served):
        workload, model, _, _, _ = served
        for job in workload:
            reference = TinyLoRATransformer(
                TINY, np.random.default_rng(MODEL_SEED)
            )
            solo = train_job_sequentially(reference, job.numeric)
            online_params = model.adapter_state(job.adapter_id)
            solo_params = reference.adapter_state(job.adapter_id)
            for key in online_params:
                assert np.array_equal(online_params[key].a, solo_params[key].a)
                assert np.array_equal(online_params[key].b, solo_params[key].b)

    def test_loss_trajectories_bit_identical(self, served):
        workload, _, engine, _, _ = served
        for job in workload:
            reference = TinyLoRATransformer(
                TINY, np.random.default_rng(MODEL_SEED)
            )
            solo = train_job_sequentially(reference, job.numeric)
            assert engine.losses(job.adapter_id) == \
                solo.losses[job.adapter_id]

    def test_all_steps_taken(self, served):
        workload, _, engine, _, result = served
        for job in workload:
            expected = job.numeric.num_global_batches()
            assert engine.steps_done(job.adapter_id) == expected
            assert result.records[job.adapter_id].finish_time is not None


class TestOnlineLosslessnessAcrossConfigurations:
    @pytest.mark.parametrize(
        "num_stages,window,slots",
        [(1, 1, 2), (2, 2, 3), (4, 1, 4)],
    )
    def test_probe_exact_under_varied_pipelines(self, num_stages, window, slots):
        workload = churn_workload()
        model, _, orchestrator, result = run_online(
            workload, num_stages=num_stages, window=window, slots=slots
        )
        assert result.violations == 0
        assert find_violations(orchestrator.stream, num_stages) == []
        probe = next(job for job in workload if job.adapter_id == 1)
        reference = TinyLoRATransformer(TINY, np.random.default_rng(MODEL_SEED))
        train_job_sequentially(reference, probe.numeric)
        online_params = model.adapter_state(1)
        solo_params = reference.adapter_state(1)
        for key in online_params:
            assert np.array_equal(online_params[key].a, solo_params[key].a)
            assert np.array_equal(online_params[key].b, solo_params[key].b)
