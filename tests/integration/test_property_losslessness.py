"""Property test: arbitrary disturbance interleavings stay lossless.

Hypothesis drives a two-pipeline numeric setup through randomized
schedules of offers, preemptions (policy-driven evictions plus explicit
eject-and-hold "bounces"), and cross-pipeline migrations, at arbitrary
points of the serving loop.  Whatever the interleaving, every tenant's
final adapter weights must be **identical (atol=0)** to sequential solo
training -- the paper's losslessness guarantee lifted to the full
online/SLO/migration machinery.

The deterministic acceptance tests
(``test_online_losslessness.py``, ``test_migration_losslessness.py``,
``test_preemption_losslessness.py``) pin three specific scenarios; this
test searches the interleaving space around them.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines import train_job_sequentially
from repro.core.lora import LoRAConfig
from repro.data.dataset import FinetuneDataset, Sample
from repro.models import TINY, TinyLoRATransformer
from repro.runtime import MultiLoRAEngine, NumericJob
from repro.scheduler import AdapterJob, SchedulerConfig
from repro.serve import (
    NumericExecutor,
    OnlineOrchestrator,
    OrchestratorConfig,
    PriorityOrdering,
    ServeJob,
    SlotAdmission,
)

MODEL_SEED = 23
MAX_ITERATIONS = 500


def make_serve_job(adapter_id, num_samples, rank, arrival, priority):
    rng = np.random.default_rng(100 + adapter_id)
    streams = [
        rng.integers(0, TINY.vocab_size, int(rng.integers(5, 12)))
        for _ in range(num_samples)
    ]
    numeric = NumericJob(
        adapter_id=adapter_id,
        lora=LoRAConfig(rank=rank, alpha=1.0, dropout=0.0,
                        adapter_id=adapter_id),
        token_streams=streams,
        global_batch_size=2,
    )
    dataset = FinetuneDataset(
        adapter_id,
        [Sample(adapter_id, i, len(t)) for i, t in enumerate(streams)],
    )
    return ServeJob(
        job=AdapterJob(adapter_id, dataset, 2),
        arrival_time=arrival,
        numeric=numeric,
        priority=priority,
    )


def make_orchestrator(model):
    engine = MultiLoRAEngine(model, exact_accumulation=True)
    config = OrchestratorConfig(
        scheduler=SchedulerConfig(capacity=64, padding_multiple=1,
                                  num_stages=2, use_milp=False,
                                  group_size=2),
        window_batches=1,
        admission=SlotAdmission(2),
        ordering=PriorityOrdering(),
        mid_wave_admission=True,
    )
    return OnlineOrchestrator(NumericExecutor(engine), config)


job_spec = st.tuples(
    st.integers(min_value=4, max_value=8),   # samples
    st.sampled_from([2, 3]),                 # rank
    st.sampled_from([0.0, 1.0, 2.0]),        # arrival
    st.integers(min_value=0, max_value=1),   # priority
)

action_spec = st.tuples(
    st.integers(min_value=0, max_value=3),   # loop iterations to wait
    st.integers(min_value=0, max_value=2),   # job index (mod num_jobs)
    st.sampled_from(["migrate", "bounce"]),
)


@settings(max_examples=12, deadline=None)
@given(
    specs=st.lists(job_spec, min_size=2, max_size=3),
    actions=st.lists(action_spec, min_size=0, max_size=6),
    hold=st.integers(min_value=1, max_value=4),
)
def test_interleaved_disturbances_preserve_losslessness(specs, actions, hold):
    workload = [
        make_serve_job(aid, samples, rank, arrival, priority)
        for aid, (samples, rank, arrival, priority) in enumerate(specs)
    ]
    models = [
        TinyLoRATransformer(TINY, np.random.default_rng(MODEL_SEED))
        for _ in range(2)
    ]
    orchestrators = [make_orchestrator(model) for model in models]
    orchestrators[0].start(workload)  # every tenant lands on pipeline 0
    orchestrators[1].start([])
    owner = {job.adapter_id: 0 for job in workload}

    queue = list(actions)
    countdown = queue[0][0] if queue else None
    held = []  # (ticket, release_at_iteration)

    def movable(orchestrator, adapter_id):
        return any(
            aid == adapter_id for aid, *_ in orchestrator.migratable_jobs()
        )

    def try_inject(ticket):
        """Place a ticket on whichever pipeline can take it now."""
        for index, orchestrator in enumerate(orchestrators):
            if ticket.payload is None or orchestrator.slots_free != 0:
                orchestrator.inject_job(ticket)
                owner[ticket.adapter_id] = index
                return True
        return False

    iteration = 0
    while (
        any(o.has_work() for o in orchestrators) or held
    ) and iteration < MAX_ITERATIONS:
        iteration += 1
        still_held = []
        for ticket, release_at in held:
            if iteration < release_at or not try_inject(ticket):
                still_held.append((ticket, release_at))
        held = still_held
        for orchestrator in orchestrators:
            if orchestrator.has_work():
                orchestrator.step()
        if countdown is None:
            continue
        if countdown > 0:
            countdown -= 1
            continue
        _, job_index, kind = queue.pop(0)
        countdown = queue[0][0] if queue else None
        adapter_id = workload[job_index % len(workload)].adapter_id
        source_index = owner.get(adapter_id)
        if source_index is None:
            continue  # currently held as a ticket
        source = orchestrators[source_index]
        if not movable(source, adapter_id):
            continue
        ticket = source.eject_job(adapter_id)
        owner[adapter_id] = None
        if kind == "migrate":
            if not try_inject(ticket):
                held.append((ticket, iteration + 1))
        else:  # bounce: hold the ticket, resume later
            held.append((ticket, iteration + hold))

    assert not held, "tickets never re-injected (scheduler wedged?)"
    results = [o.finish() for o in orchestrators]
    records = {}
    for result in results:
        assert result.violations == 0
        records.update(result.records)

    for serve_job in workload:
        record = records[serve_job.adapter_id]
        assert record.finish_time is not None
        reference = TinyLoRATransformer(TINY, np.random.default_rng(MODEL_SEED))
        train_job_sequentially(reference, serve_job.numeric)
        final_model = models[owner[serve_job.adapter_id]]
        online = final_model.adapter_state(serve_job.adapter_id)
        solo = reference.adapter_state(serve_job.adapter_id)
        for key in online:
            np.testing.assert_array_equal(online[key].a, solo[key].a)
            np.testing.assert_array_equal(online[key].b, solo[key].b)
