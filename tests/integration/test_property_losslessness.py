"""Property test: arbitrary disturbance interleavings stay lossless.

Hypothesis drives an elastic numeric fleet through randomized schedules
of offers, preemptions (policy-driven evictions plus explicit
eject-and-hold "bounces"), cross-pipeline migrations, and **scale
events** -- pipelines joining mid-run, graceful retirements, and spot
reclamations that evacuate a pipeline wholesale -- at arbitrary points
of the serving loop.  Whatever the interleaving, every surviving
tenant's final adapter weights must be **identical (atol=0)** to
sequential solo training -- the paper's losslessness guarantee lifted to
the full online/SLO/migration/autoscaling machinery -- and replaying
the same interleaving must reproduce byte-identical job records.

The deterministic acceptance tests
(``test_online_losslessness.py``, ``test_migration_losslessness.py``,
``test_preemption_losslessness.py``) pin specific scenarios; this test
searches the interleaving space around them.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines import train_job_sequentially
from repro.core.lora import LoRAConfig
from repro.data.dataset import FinetuneDataset, Sample
from repro.models import TINY, TinyLoRATransformer
from repro.runtime import MultiLoRAEngine, NumericJob
from repro.scheduler import AdapterJob, SchedulerConfig
from repro.serve import (
    NumericExecutor,
    OnlineOrchestrator,
    OrchestratorConfig,
    PriorityOrdering,
    ServeJob,
    SlotAdmission,
)

MODEL_SEED = 23
MAX_ITERATIONS = 500
#: Pipelines a scenario may grow to (each join builds a full model).
MAX_PIPELINES = 4


def make_serve_job(adapter_id, num_samples, rank, arrival, priority):
    rng = np.random.default_rng(100 + adapter_id)
    streams = [
        rng.integers(0, TINY.vocab_size, int(rng.integers(5, 12)))
        for _ in range(num_samples)
    ]
    numeric = NumericJob(
        adapter_id=adapter_id,
        lora=LoRAConfig(rank=rank, alpha=1.0, dropout=0.0,
                        adapter_id=adapter_id),
        token_streams=streams,
        global_batch_size=2,
    )
    dataset = FinetuneDataset(
        adapter_id,
        [Sample(adapter_id, i, len(t)) for i, t in enumerate(streams)],
    )
    return ServeJob(
        job=AdapterJob(adapter_id, dataset, 2),
        arrival_time=arrival,
        numeric=numeric,
        priority=priority,
    )


def make_orchestrator(model):
    engine = MultiLoRAEngine(model, exact_accumulation=True)
    config = OrchestratorConfig(
        scheduler=SchedulerConfig(capacity=64, padding_multiple=1,
                                  num_stages=2, use_milp=False,
                                  group_size=2),
        window_batches=1,
        admission=SlotAdmission(2),
        ordering=PriorityOrdering(),
        mid_wave_admission=True,
    )
    return OnlineOrchestrator(NumericExecutor(engine), config)


job_spec = st.tuples(
    st.integers(min_value=4, max_value=8),   # samples
    st.sampled_from([2, 3]),                 # rank
    st.sampled_from([0.0, 1.0, 2.0]),        # arrival
    st.integers(min_value=0, max_value=1),   # priority
)

action_spec = st.tuples(
    st.integers(min_value=0, max_value=3),   # loop iterations to wait
    st.integers(min_value=0, max_value=2),   # job index (mod num_jobs)
    st.sampled_from(
        ["migrate", "bounce", "join", "retire", "reclaim"]
    ),
)


def run_scenario(specs, actions, hold):
    """Serve the workload under the given disturbance schedule.

    Returns ``(models, records, owner)``: every model ever in the fleet
    (retired pipelines keep the weights of the jobs that finished on
    them), the merged job records, and each tenant's final pipeline.
    """
    workload = [
        make_serve_job(aid, samples, rank, arrival, priority)
        for aid, (samples, rank, arrival, priority) in enumerate(specs)
    ]
    models = [
        TinyLoRATransformer(TINY, np.random.default_rng(MODEL_SEED))
        for _ in range(2)
    ]
    orchestrators = [make_orchestrator(model) for model in models]
    orchestrators[0].start(workload)  # every tenant lands on pipeline 0
    orchestrators[1].start([])
    alive = {0, 1}
    owner = {job.adapter_id: 0 for job in workload}

    queue = list(actions)
    countdown = queue[0][0] if queue else None
    held = []  # (ticket, release_at_iteration)

    def movable(orchestrator, adapter_id):
        return any(
            aid == adapter_id for aid, *_ in orchestrator.migratable_jobs()
        )

    def try_inject(ticket):
        """Place a ticket on whichever *alive* pipeline can take it."""
        for index in sorted(alive):
            orchestrator = orchestrators[index]
            if ticket.payload is None or orchestrator.slots_free != 0:
                orchestrator.inject_job(ticket)
                owner[ticket.adapter_id] = index
                return True
        return False

    def evacuate(index):
        """Empty pipeline ``index`` losslessly and take it out of the
        fleet -- the shared spine of graceful retirement and
        reclamation: flush to a step boundary, eject everything
        unfinished, re-place or hold each ticket."""
        alive.discard(index)  # before placement: never a target again
        source = orchestrators[index]
        source.flush()
        for adapter_id in sorted(
            aid for aid, *_ in source.migratable_jobs()
        ):
            ticket = source.eject_job(adapter_id)
            owner[adapter_id] = None
            if not try_inject(ticket):
                held.append((ticket, iteration + 1))
        assert not source.has_work()  # evacuation is total

    iteration = 0
    while (
        any(orchestrators[i].has_work() for i in alive) or held
    ) and iteration < MAX_ITERATIONS:
        iteration += 1
        still_held = []
        for ticket, release_at in held:
            if iteration < release_at or not try_inject(ticket):
                still_held.append((ticket, release_at))
        held = still_held
        for index in sorted(alive):
            if orchestrators[index].has_work():
                orchestrators[index].step()
        if countdown is None:
            continue
        if countdown > 0:
            countdown -= 1
            continue
        _, job_index, kind = queue.pop(0)
        countdown = queue[0][0] if queue else None
        if kind == "join":
            if len(orchestrators) < MAX_PIPELINES:
                model = TinyLoRATransformer(
                    TINY, np.random.default_rng(MODEL_SEED)
                )
                orchestrator = make_orchestrator(model)
                orchestrator.start([])
                models.append(model)
                orchestrators.append(orchestrator)
                alive.add(len(orchestrators) - 1)
            continue
        if kind == "reclaim":
            # A provider takes the newest pipeline back (mirroring
            # newest-first spot victim selection); the last alive
            # pipeline always survives.
            if len(alive) > 1:
                evacuate(max(alive))
            continue
        adapter_id = workload[job_index % len(workload)].adapter_id
        source_index = owner.get(adapter_id)
        if source_index is None:
            continue  # currently held as a ticket
        if kind == "retire":
            # Gracefully drain the chosen job's pipeline out of the
            # fleet (never the last one; finished tenants' weights stay
            # on its model).
            if source_index in alive and len(alive) > 1:
                evacuate(source_index)
            continue
        source = orchestrators[source_index]
        if not movable(source, adapter_id):
            continue
        ticket = source.eject_job(adapter_id)
        owner[adapter_id] = None
        if kind == "migrate":
            if not try_inject(ticket):
                held.append((ticket, iteration + 1))
        else:  # bounce: hold the ticket, resume later
            held.append((ticket, iteration + hold))

    assert not held, "tickets never re-injected (scheduler wedged?)"
    records = {}
    for index, orchestrator in enumerate(orchestrators):
        result = orchestrator.finish()
        if index in alive:
            assert result.violations == 0
        records.update(result.records)
    return workload, models, records, owner


def fingerprint(records):
    return {
        aid: (r.arrival_time, r.admit_time, r.first_scheduled_time,
              r.finish_time, r.num_batches)
        for aid, r in records.items()
    }


@pytest.mark.slow
@settings(max_examples=12, deadline=None)
@given(
    specs=st.lists(job_spec, min_size=2, max_size=3),
    actions=st.lists(action_spec, min_size=0, max_size=6),
    hold=st.integers(min_value=1, max_value=4),
)
def test_interleaved_disturbances_preserve_losslessness(specs, actions, hold):
    workload, models, records, owner = run_scenario(specs, actions, hold)

    # Replaying the same interleaving reproduces the records exactly --
    # scale events included, the system stays deterministic.
    _, _, replay_records, _ = run_scenario(specs, actions, hold)
    assert fingerprint(replay_records) == fingerprint(records)

    for serve_job in workload:
        record = records[serve_job.adapter_id]
        assert record.finish_time is not None
        reference = TinyLoRATransformer(TINY, np.random.default_rng(MODEL_SEED))
        train_job_sequentially(reference, serve_job.numeric)
        final_model = models[owner[serve_job.adapter_id]]
        online = final_model.adapter_state(serve_job.adapter_id)
        solo = reference.adapter_state(serve_job.adapter_id)
        for key in online:
            np.testing.assert_array_equal(online[key].a, solo[key].a)
            np.testing.assert_array_equal(online[key].b, solo[key].b)
