"""Failure injection: the system must fail loudly on invalid inputs.

A scheduler that silently drops samples or a simulator that silently
deadlocks would corrupt training; these tests pin the error paths across
module boundaries.
"""

import numpy as np
import pytest

from repro.core import LoRAConfig, LoRALinear, MultiLoRABatch, Segment
from repro.data import synthetic_dataset
from repro.data.dataset import FinetuneDataset, Sample
from repro.distsim import ClusterSpec, PipelineMicrobatch, simulate_stream
from repro.errors import (
    CapacityError,
    KernelConfigError,
    ScheduleError,
    SimulationError,
)
from repro.gpu import H100
from repro.scheduler import AdapterJob, MultiLoRAScheduler, SchedulerConfig


class TestSchedulerFailures:
    def test_oversized_sample_fails_loudly(self):
        samples = [Sample(0, 0, 99999)]
        jobs = [AdapterJob(0, FinetuneDataset(0, samples), 1)]
        config = SchedulerConfig(capacity=1024, num_stages=2, use_milp=False)
        with pytest.raises(CapacityError, match="exceeds microbatch capacity"):
            MultiLoRAScheduler(jobs, config).schedule()

    def test_capacity_not_multiple_of_padding(self):
        with pytest.raises(ScheduleError, match="multiple"):
            SchedulerConfig(capacity=1000, padding_multiple=128)

    def test_no_jobs(self):
        with pytest.raises(ScheduleError):
            MultiLoRAScheduler([], SchedulerConfig(capacity=1024))

    def test_schedule_survives_pathological_length_skew(self):
        # One adapter with maximal samples, one with minimal: must still
        # schedule every sample exactly once, within capacity.
        long = FinetuneDataset(0, [Sample(0, i, 8192) for i in range(8)])
        short = FinetuneDataset(1, [Sample(1, i, 64) for i in range(8)])
        jobs = [AdapterJob(0, long, 4), AdapterJob(1, short, 4)]
        config = SchedulerConfig(capacity=8192, num_stages=4, use_milp=False,
                                 group_size=2)
        schedule = MultiLoRAScheduler(jobs, config).schedule()
        for adapter_id in (0, 1):
            seen = sorted(
                a.sample.index
                for mb in schedule.microbatches
                for a in mb.assignments
                if a.adapter_id == adapter_id
            )
            assert seen == list(range(8))
        assert all(mb.padded_tokens <= 8192 for mb in schedule.microbatches)


class TestSimulatorFailures:
    def test_deadlock_reported_not_hung(self):
        # Adjacent batches of one adapter with no spacing: the simulator
        # must raise, not spin forever.
        mbs = [
            PipelineMicrobatch((1.0,) * 4, (2.0,) * 4,
                               frozenset([(0, i)]))
            for i in range(4)
        ]
        with pytest.raises(SimulationError, match="deadlock"):
            simulate_stream(mbs, 4)

    def test_bad_cluster_rejected(self):
        with pytest.raises(SimulationError):
            ClusterSpec(gpu=H100, num_gpus=0)

    def test_stage_width_mismatch_rejected(self):
        mbs = [PipelineMicrobatch((1.0,), (2.0,))]
        with pytest.raises(SimulationError, match="stage"):
            simulate_stream(mbs, 4)


class TestKernelFailures:
    def test_tile_straddling_adapters_rejected(self):
        with pytest.raises(KernelConfigError, match="aligned"):
            MultiLoRABatch([Segment(0, 65)], block_m=64)

    def test_forward_with_wrong_width_input(self):
        layer = LoRALinear(np.zeros((8, 4)), strategy="fused",
                           rng=np.random.default_rng(0))
        layer.add_adapter(LoRAConfig(rank=2, dropout=0.0, adapter_id=0))
        with pytest.raises(ValueError):
            layer.forward(np.zeros((4, 9)))  # k mismatch -> matmul error

    def test_missing_adapter(self):
        layer = LoRALinear(np.zeros((8, 4)))
        with pytest.raises(KernelConfigError, match="unknown adapter"):
            layer.forward(np.zeros((4, 8)), adapter_id=3)


class TestPlannerFailures:
    def test_profiler_raises_floor_above_tiny_candidates(self):
        from repro.planner import propose_capacity
        from repro.models import LLAMA3_8B

        jobs = [AdapterJob(0, synthetic_dataset(0, "wikisum", 8, seed=1), 4)]
        report = propose_capacity(jobs, LLAMA3_8B,
                                  ClusterSpec(gpu=H100, num_gpus=1),
                                  candidates=(128,))
        longest = max(s.length for s in jobs[0].dataset.samples)
        assert report.best_capacity >= longest
