"""Property test: the event kernel is bit-identical to lockstep.

:class:`~repro.serve.ReplicaSet` runs on a discrete-event kernel by
default (``kernel="event"``); the original replica-scan loop survives as
``kernel="lockstep"``, the executable specification.  Hypothesis drives
both kernels over randomized small traces -- arrival patterns x ordering
policies x rebalance triggers (batch skew, seconds skew, drain-unlock)
-- and asserts the runs are **indistinguishable**: identical per-job
records (arrival/start/finish timestamps, outcome, final replica,
migration count), identical fleet counters, identical calibration
records, identical per-replica streams.

Two deterministic scenarios (active migration, deep-pipeline drain) pin
the equivalence on known-adversarial traces, and a repeat-run test pins
byte-level determinism of the event kernel itself.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data import synthetic_dataset
from repro.gpu import H100
from repro.models.config import LLAMA3_8B
from repro.models.layer_costs import LayerCostModel
from repro.scheduler import AdapterJob, SchedulerConfig
from repro.serve import (
    CostEstimator,
    FCFSOrdering,
    OrchestratorConfig,
    ReplicaSet,
    ReplicaSetConfig,
    SRPTOrdering,
    ServeJob,
    SlotAdmission,
    StreamingSimExecutor,
    poisson_workload,
)

COST = LayerCostModel(LLAMA3_8B, H100, strategy="fused_multi")
DATASETS = ["xsum", "cnn_dailymail", "wikisum", "mixed"]


class StickyRouting:
    """Pin every tenant to replica 0 (forces rebalancing to act)."""

    def choose(self, job, replicas):
        return 0


def make_jobs(specs):
    """One AdapterJob per ``(samples, gbs)`` spec, datasets cycling."""
    return [
        AdapterJob(a, synthetic_dataset(a, DATASETS[a % 4], samples, seed=3),
                   gbs)
        for a, (samples, gbs) in enumerate(specs)
    ]


def build_set(kernel, num_replicas, num_stages, ordering, sticky,
              batch_threshold, time_threshold, drain, slots=2):
    """A fresh fleet (executors, estimator, calibration) per run."""
    scheduler = SchedulerConfig(capacity=8192, num_stages=num_stages,
                                use_milp=False)
    estimator = (
        CostEstimator.for_scheduler(COST, scheduler)
        if time_threshold is not None or isinstance(ordering, SRPTOrdering)
        else None
    )
    config = ReplicaSetConfig(
        orchestrator=OrchestratorConfig(
            scheduler=scheduler,
            window_batches=1,
            admission=SlotAdmission(slots),
            ordering=ordering,
            estimator=estimator,
        ),
        routing=StickyRouting() if sticky else None,
        migration_threshold=batch_threshold,
        migration_time_threshold=time_threshold,
        drain_then_migrate=drain,
        kernel=kernel,
    )
    executors = [
        StreamingSimExecutor(COST, num_stages) for _ in range(num_replicas)
    ]
    return ReplicaSet(executors, config)


def fingerprint(replica_set, result):
    """Everything observable about a run, as one comparable structure.

    Deliberately excludes ``events_processed`` (the one field that
    legitimately differs: lockstep processes no events).
    """
    return {
        "records": {
            aid: (
                record.arrival_time,
                record.admit_time,
                record.first_scheduled_time,
                record.finish_time,
                record.outcome,
                record.replica,
                record.migrations,
                record.preemptions,
                record.num_batches,
                record.total_tokens,
            )
            for aid, record in sorted(result.records.items())
        },
        "counters": (
            result.migrations,
            result.reroutes,
            result.rebalance_drains,
            result.drain_steps_saved,
            result.violations,
            result.total_tokens,
            result.total_microbatches,
        ),
        "makespans": [r.makespan for r in result.replicas],
        "replans": [r.replans for r in result.replicas],
        "wave_estimates": [r.wave_estimates for r in result.replicas],
        "assignments": sorted(replica_set.router.assignments.items()),
        "streams": [
            [
                (mb.replica, sorted(
                    (a.adapter_id, a.global_batch, a.sample.index)
                    for a in mb.assignments
                ))
                for mb in replica.stream
            ]
            for replica in replica_set.replicas
        ],
    }


def run_both(specs, **kwargs):
    prints = []
    for kernel in ("event", "lockstep"):
        replica_set = build_set(kernel, **kwargs)
        workload = poisson_workload(make_jobs(specs), rate=1.0, rng=11)
        result = replica_set.run(workload)
        prints.append(fingerprint(replica_set, result))
    return prints


job_specs = st.lists(
    st.tuples(
        st.integers(min_value=4, max_value=16),  # samples
        st.sampled_from([2, 4]),                 # global batch size
    ),
    min_size=3,
    max_size=7,
)


@pytest.mark.slow
class TestRandomizedEquivalence:
    @given(specs=job_specs,
           num_replicas=st.integers(min_value=2, max_value=3),
           sticky=st.booleans(),
           threshold=st.sampled_from([None, 2, 6]))
    @settings(max_examples=12, deadline=None)
    def test_batch_skew_traces_match(self, specs, num_replicas, sticky,
                                     threshold):
        event, lockstep = run_both(
            specs, num_replicas=num_replicas, num_stages=2,
            ordering=FCFSOrdering(), sticky=sticky,
            batch_threshold=threshold, time_threshold=None, drain=False,
        )
        assert event == lockstep

    @given(specs=job_specs,
           drain=st.booleans(),
           time_threshold=st.sampled_from([0.05, 1.0]))
    @settings(max_examples=10, deadline=None)
    def test_seconds_skew_and_drain_traces_match(self, specs, drain,
                                                 time_threshold):
        # Seconds-valued skew exercises the estimator/calibration caches
        # and -- with drain_then_migrate -- the partial-drain unlock.
        event, lockstep = run_both(
            specs, num_replicas=2, num_stages=4,
            ordering=SRPTOrdering(), sticky=True,
            batch_threshold=None, time_threshold=time_threshold,
            drain=drain,
        )
        assert event == lockstep


class TestPinnedEquivalence:
    def migration_trace(self):
        long_job = AdapterJob(0, synthetic_dataset(0, "xsum", 12, seed=3), 2)
        shorts = [
            AdapterJob(a, synthetic_dataset(a, "xsum", 4, seed=3), 2)
            for a in (1, 2)
        ]
        return [
            ServeJob(job=long_job, arrival_time=0.0),
            ServeJob(job=shorts[0], arrival_time=0.01),
            ServeJob(job=shorts[1], arrival_time=0.01),
        ]

    def test_active_migration_trace_matches(self):
        prints = []
        for kernel in ("event", "lockstep"):
            replica_set = build_set(
                kernel, num_replicas=2, num_stages=1,
                ordering=FCFSOrdering(), sticky=True,
                batch_threshold=8, time_threshold=None, drain=False,
                slots=4,
            )
            result = replica_set.run(self.migration_trace())
            assert result.migrations >= 1  # the trace forces a move
            prints.append(fingerprint(replica_set, result))
        assert prints[0] == prints[1]

    def test_deep_pipeline_drain_trace_matches(self):
        specs = [(24, 4), (24, 4)]
        prints = []
        drains = []
        for kernel in ("event", "lockstep"):
            replica_set = build_set(
                kernel, num_replicas=2, num_stages=4,
                ordering=FCFSOrdering(), sticky=True,
                batch_threshold=None, time_threshold=0.05, drain=True,
            )
            workload = [
                ServeJob(job=job, arrival_time=0.0)
                for job in make_jobs(specs)
            ]
            result = replica_set.run(workload)
            drains.append(result.rebalance_drains)
            prints.append(fingerprint(replica_set, result))
        assert drains[0] >= 1  # the trace forces a drain-unlock
        assert prints[0] == prints[1]

    def test_event_kernel_reruns_are_byte_identical(self):
        # Determinism of the event kernel itself: two fresh runs of the
        # same trace agree down to the repr of every record and stream.
        reprs = []
        for _ in range(2):
            replica_set = build_set(
                "event", num_replicas=3, num_stages=2,
                ordering=SRPTOrdering(), sticky=False,
                batch_threshold=2, time_threshold=None, drain=False,
            )
            workload = poisson_workload(
                make_jobs([(8, 2), (12, 4), (6, 2), (10, 2)]),
                rate=1.0, rng=7,
            )
            result = replica_set.run(workload)
            reprs.append(repr(fingerprint(replica_set, result))
                         + repr(sorted(result.records.items()))
                         + repr(result.events_processed))
        assert reprs[0] == reprs[1]
