"""Preemption losslessness: evict, park, resume -- still bit-identical.

The SLO acceptance bar: a best-effort job that loses its adapter slot to
a high-class arrival mid-training (state exported at an optimizer-step
boundary and parked on the orchestrator) and later resumes must finish
with final adapter weights **identical (atol=0)** to an uninterrupted
run -- which ``test_online_losslessness.py`` already pins to sequential
solo training.  Preemption reuses the migration export/import machinery,
so this is the same guarantee exercised through the ordering policy's
eviction path instead of the rebalancer's.
"""

import numpy as np
import pytest

from repro.baselines import train_job_sequentially
from repro.core.lora import LoRAConfig
from repro.data.dataset import FinetuneDataset, Sample
from repro.models import TINY, TinyLoRATransformer
from repro.runtime import MultiLoRAEngine, NumericJob
from repro.scheduler import AdapterJob, SchedulerConfig, find_violations
from repro.serve import (
    NumericExecutor,
    OnlineOrchestrator,
    OrchestratorConfig,
    PriorityOrdering,
    ServeJob,
    SlotAdmission,
)

MODEL_SEED = 17


def make_serve_job(rng, adapter_id, rank, num_samples, gbs, arrival,
                   priority=0):
    streams = [
        rng.integers(0, TINY.vocab_size, int(rng.integers(6, 16)))
        for _ in range(num_samples)
    ]
    numeric = NumericJob(
        adapter_id=adapter_id,
        lora=LoRAConfig(rank=rank, alpha=1.0, dropout=0.0,
                        adapter_id=adapter_id),
        token_streams=streams,
        global_batch_size=gbs,
    )
    dataset = FinetuneDataset(
        adapter_id,
        [Sample(adapter_id, i, len(t)) for i, t in enumerate(streams)],
    )
    return ServeJob(
        job=AdapterJob(adapter_id, dataset, gbs),
        arrival_time=arrival,
        numeric=numeric,
        priority=priority,
    )


def preemption_workload():
    """A long best-effort tenant, then a short high-class arrival.

    One adapter slot: admitting the high-class job forces the policy to
    evict the long tenant mid-training, park its exported state, and
    resume it after the high-class job retires.
    """
    rng = np.random.default_rng(3)
    return [
        make_serve_job(rng, 0, 2, 12, 2, arrival=0.0, priority=0),
        make_serve_job(rng, 1, 3, 4, 2, arrival=1.0, priority=1),
    ]


class TestPreemptionLosslessness:
    @pytest.fixture(scope="class")
    def served(self):
        workload = preemption_workload()
        model = TinyLoRATransformer(TINY, np.random.default_rng(MODEL_SEED))
        engine = MultiLoRAEngine(model, exact_accumulation=True)
        config = OrchestratorConfig(
            scheduler=SchedulerConfig(capacity=64, padding_multiple=1,
                                      num_stages=2, use_milp=False,
                                      group_size=2),
            window_batches=1,
            admission=SlotAdmission(1),
            ordering=PriorityOrdering(),
            mid_wave_admission=True,
        )
        orchestrator = OnlineOrchestrator(NumericExecutor(engine), config)
        result = orchestrator.run(workload)
        return workload, model, engine, orchestrator, result

    def test_a_preemption_actually_happened(self, served):
        _, _, _, _, result = served
        assert result.preemptions >= 1
        probe = result.records[0]
        assert probe.preemptions >= 1
        assert probe.finish_time is not None

    def test_high_class_job_was_never_evicted(self, served):
        _, _, _, _, result = served
        assert result.records[1].preemptions == 0

    def test_stream_stays_bubble_safe(self, served):
        _, _, _, orchestrator, result = served
        assert result.violations == 0
        assert find_violations(orchestrator.stream, 2) == []

    def test_every_sample_trained_exactly_once(self, served):
        workload, _, _, orchestrator, _ = served
        for job in workload:
            seen = sorted(
                a.sample.index
                for mb in orchestrator.stream
                for a in mb.assignments
                if a.adapter_id == job.adapter_id
            )
            assert seen == list(range(len(job.job.dataset)))

    def test_preempted_job_weights_bit_identical_to_sequential(self, served):
        workload, model, _, _, result = served
        for serve_job in workload:
            reference = TinyLoRATransformer(
                TINY, np.random.default_rng(MODEL_SEED)
            )
            train_job_sequentially(reference, serve_job.numeric)
            online = model.adapter_state(serve_job.adapter_id)
            solo = reference.adapter_state(serve_job.adapter_id)
            for key in online:
                np.testing.assert_array_equal(online[key].a, solo[key].a)
                np.testing.assert_array_equal(online[key].b, solo[key].b)

    def test_loss_history_survives_the_park(self, served):
        workload, _, engine, _, _ = served
        probe = workload[0]
        reference = TinyLoRATransformer(TINY, np.random.default_rng(MODEL_SEED))
        solo = train_job_sequentially(reference, probe.numeric)
        assert engine.losses(0) == solo.losses[0]
        assert engine.steps_done(0) == probe.numeric.num_global_batches()


class TestStaleResumeGuard:
    def test_engine_rejects_snapshot_regression(self):
        # Resume-after-preemption bookkeeping: an old snapshot must not
        # silently rewind an adapter the engine already advanced.
        rng = np.random.default_rng(4)
        serve_job = make_serve_job(rng, 0, 2, 8, 2, arrival=0.0)
        engine = MultiLoRAEngine(
            TinyLoRATransformer(TINY, np.random.default_rng(MODEL_SEED)),
            exact_accumulation=True,
        )
        engine.add_job(serve_job.numeric)
        from repro.errors import ScheduleError
        from repro.scheduler import Assignment, Microbatch

        stale = engine.export_job_state(0)
        for batch in range(2):
            mb = Microbatch(capacity=64, padding_multiple=1)
            for index in serve_job.numeric.batch_indices(batch):
                mb.add(Assignment(Sample(0, index, 1), batch))
            engine.submit(mb)
        engine.remove_job(0)
        with pytest.raises(ScheduleError, match="stale"):
            engine.import_job_state(serve_job.numeric, stale)
