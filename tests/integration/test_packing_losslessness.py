"""Property tests: knapsack packing changes nothing but the schedule.

Length-aware streaming packing (``packing="knapsack"``) reorders wave
assembly -- sticky token-mass knapsack groups, fragmentation-biased
admission ties, merge-discounted wave pricing -- but every one of those
levers must stay *schedule-shaping only*.  Hypothesis drives the same
disturbance machinery as ``test_property_losslessness.py`` (offers,
preemption bounces, cross-pipeline migrations, pipelines joining and
retiring, spot reclamations) with knapsack packing switched on and
asserts the paper's guarantee still holds bit-for-bit: every surviving
tenant's final adapter weights are **identical (atol=0)** to sequential
solo training, and a replay reproduces identical records.

A second family pins kernel independence: a knapsack-packed fleet with
sticky groups, the estimator-biased admission hook, and estimator-priced
packing-affinity routing must replay **byte-identically** on
``kernel="event"`` and ``kernel="lockstep"``, on repeated runs.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines import train_job_sequentially
from repro.data import synthetic_dataset
from repro.gpu import H100
from repro.models import TINY, TinyLoRATransformer
from repro.models.config import LLAMA3_8B
from repro.models.layer_costs import LayerCostModel
from repro.runtime import MultiLoRAEngine
from repro.scheduler import AdapterJob, SchedulerConfig
from repro.serve import (
    CostEstimator,
    FCFSOrdering,
    NumericExecutor,
    OnlineOrchestrator,
    OrchestratorConfig,
    PackingAffinityRouting,
    PriorityOrdering,
    ReplicaSet,
    ReplicaSetConfig,
    SlotAdmission,
    StreamingSimExecutor,
    poisson_workload,
)
from tests.integration.test_event_kernel_equivalence import fingerprint
from tests.integration.test_property_losslessness import MODEL_SEED

COST = LayerCostModel(LLAMA3_8B, H100, strategy="fused_multi")
DATASETS = ["xsum", "cnn_dailymail", "wikisum", "mixed"]


def make_knapsack_orchestrator(model):
    engine = MultiLoRAEngine(model, exact_accumulation=True)
    config = OrchestratorConfig(
        scheduler=SchedulerConfig(capacity=64, padding_multiple=1,
                                  num_stages=2, use_milp=False,
                                  group_size=2),
        window_batches=1,
        admission=SlotAdmission(2),
        ordering=PriorityOrdering(),
        mid_wave_admission=True,
        packing="knapsack",
    )
    return OnlineOrchestrator(NumericExecutor(engine), config)


def run_scenario(specs, actions, hold):
    """``test_property_losslessness.run_scenario`` with knapsack packing.

    The disturbance schedule is identical (offers at start, then a queue
    of migrate/bounce/join/retire/reclaim actions); only the
    orchestrator factory differs, so any divergence is the packing
    scheme's fault.
    """
    import tests.integration.test_property_losslessness as spec_module

    original = spec_module.make_orchestrator
    spec_module.make_orchestrator = make_knapsack_orchestrator
    try:
        return spec_module.run_scenario(specs, actions, hold)
    finally:
        spec_module.make_orchestrator = original


def fingerprint_records(records):
    return {
        aid: (r.arrival_time, r.admit_time, r.first_scheduled_time,
              r.finish_time, r.num_batches)
        for aid, r in records.items()
    }


job_spec = st.tuples(
    st.integers(min_value=4, max_value=8),   # samples
    st.sampled_from([2, 3]),                 # rank
    st.sampled_from([0.0, 1.0, 2.0]),        # arrival
    st.integers(min_value=0, max_value=1),   # priority
)

action_spec = st.tuples(
    st.integers(min_value=0, max_value=3),   # loop iterations to wait
    st.integers(min_value=0, max_value=2),   # job index (mod num_jobs)
    st.sampled_from(
        ["migrate", "bounce", "join", "retire", "reclaim"]
    ),
)


@pytest.mark.slow
@settings(max_examples=8, deadline=None)
@given(
    specs=st.lists(job_spec, min_size=2, max_size=3),
    actions=st.lists(action_spec, min_size=0, max_size=6),
    hold=st.integers(min_value=1, max_value=4),
)
def test_knapsack_interleavings_preserve_losslessness(specs, actions, hold):
    workload, models, records, owner = run_scenario(specs, actions, hold)

    # Determinism first: replaying the interleaving reproduces the
    # records exactly, sticky-group caches and all.
    _, _, replay_records, _ = run_scenario(specs, actions, hold)
    assert fingerprint_records(replay_records) == fingerprint_records(records)

    for serve_job in workload:
        record = records[serve_job.adapter_id]
        assert record.finish_time is not None
        reference = TinyLoRATransformer(TINY, np.random.default_rng(MODEL_SEED))
        train_job_sequentially(reference, serve_job.numeric)
        final_model = models[owner[serve_job.adapter_id]]
        online = final_model.adapter_state(serve_job.adapter_id)
        solo = reference.adapter_state(serve_job.adapter_id)
        for key in online:
            np.testing.assert_array_equal(online[key].a, solo[key].a)
            np.testing.assert_array_equal(online[key].b, solo[key].b)


def make_jobs(specs):
    return [
        AdapterJob(a, synthetic_dataset(a, DATASETS[a % 4], samples, seed=3),
                   gbs)
        for a, (samples, gbs) in enumerate(specs)
    ]


def build_knapsack_set(kernel, num_replicas, specs_seed=11):
    """A fresh knapsack-packed fleet exercising every new lever.

    Estimator on (so the admission interleave hook resolves and the
    merge discount prices waves), estimator-priced packing-affinity
    routing (so replica choice consults live length profiles), sticky
    groups via ``packing="knapsack"``.
    """
    scheduler = SchedulerConfig(capacity=8192, num_stages=2, use_milp=False)
    estimator = CostEstimator.for_scheduler(COST, scheduler)
    config = ReplicaSetConfig(
        orchestrator=OrchestratorConfig(
            scheduler=scheduler,
            window_batches=1,
            admission=SlotAdmission(2),
            ordering=FCFSOrdering(),
            estimator=estimator,
            packing="knapsack",
        ),
        routing=PackingAffinityRouting(estimator=estimator),
        kernel=kernel,
    )
    executors = [StreamingSimExecutor(COST, 2) for _ in range(num_replicas)]
    return ReplicaSet(executors, config)


job_specs = st.lists(
    st.tuples(
        st.integers(min_value=4, max_value=16),  # samples
        st.sampled_from([2, 4]),                 # global batch size
    ),
    min_size=3,
    max_size=7,
)


@pytest.mark.slow
class TestKnapsackKernelEquivalence:
    @given(specs=job_specs,
           num_replicas=st.integers(min_value=2, max_value=3))
    @settings(max_examples=10, deadline=None)
    def test_knapsack_traces_match_across_kernels(self, specs, num_replicas):
        prints = []
        for kernel in ("event", "lockstep"):
            replica_set = build_knapsack_set(kernel, num_replicas)
            workload = poisson_workload(make_jobs(specs), rate=1.0, rng=11)
            result = replica_set.run(workload)
            prints.append(fingerprint(replica_set, result))
        assert prints[0] == prints[1]

    def test_knapsack_reruns_are_byte_identical(self):
        reprs = []
        for _ in range(2):
            replica_set = build_knapsack_set("event", num_replicas=3)
            workload = poisson_workload(
                make_jobs([(8, 2), (12, 4), (6, 2), (10, 2)]),
                rate=1.0, rng=7,
            )
            result = replica_set.run(workload)
            reprs.append(repr(fingerprint(replica_set, result))
                         + repr(sorted(result.records.items())))
        assert reprs[0] == reprs[1]

    def test_knapsack_packs_report_stream_counters(self):
        replica_set = build_knapsack_set("event", num_replicas=2)
        workload = poisson_workload(
            make_jobs([(8, 2), (12, 4), (6, 2)]), rate=1.0, rng=5
        )
        result = replica_set.run(workload)
        assert result.total_padded_tokens >= result.total_tokens > 0
        assert 0.0 <= result.padding_waste() < 1.0
        assert 0.0 <= result.bubble_rate() < 1.0
        assert 0.0 < result.pack_efficiency() <= 1.0
