"""Gateway-vs-sim conformance: a live session replays bit-identically.

The contract the live gateway stands on: a recorded gateway session
(:meth:`~repro.serve.gateway.ServeGateway.recorded_trace`) must produce
an arrival trace whose replay through the existing sim path
(:meth:`~repro.serve.replicaset.ReplicaSet.run`) reproduces the live
session's fleet result **bit-identically** -- identical per-job records,
counters, per-replica makespans, and microbatch streams (atol=0) -- on
*both* fleet kernels (``"event"`` and the ``"lockstep"`` oracle).  The
live session and the batch loop share every line of event dispatch
(:class:`~repro.serve.replicaset.FleetSession` wraps the same driver
``run()`` uses), so any divergence is a real bug, not tolerance noise.

Deterministic pinned scenarios run in tier 1; the hypothesis class
(marked ``slow``) randomizes submit/cancel/overload interleavings,
door limits, and hold windows on top.
"""

import asyncio
from dataclasses import replace

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data import synthetic_dataset
from repro.gpu import H100
from repro.models.config import LLAMA3_8B
from repro.models.layer_costs import LayerCostModel
from repro.scheduler import AdapterJob, SchedulerConfig
from repro.serve import GatewayOverload, ManualClock, ReplicaSet, ServeConfig

COST = LayerCostModel(LLAMA3_8B, H100, strategy="fused_multi")
SCHED = SchedulerConfig(capacity=8192, num_stages=2, use_milp=False)
DATASETS = ["xsum", "cnn_dailymail", "wikisum", "mixed"]

#: Irregular virtual-time steps (avoids exact float collisions between
#: submit stamps and wave-close times, the measure-zero case where
#: GATEWAY_INGRESS's kind ordinal could order differently from ARRIVAL).
STEPS = (0.05, 0.13, 0.21, 0.34, 0.55)


def make_job(adapter_id, samples, gbs):
    dataset = synthetic_dataset(
        adapter_id, DATASETS[adapter_id % 4], samples, seed=3
    )
    return AdapterJob(adapter_id, dataset, gbs)


def fingerprint(replica_set, result):
    """Everything observable about a fleet run, as one exact structure.

    Mirrors the event-kernel equivalence suite's fingerprint:
    ``events_processed`` is excluded (the one field that legitimately
    differs -- lockstep processes no events, and a live session counts
    ``GATEWAY_INGRESS`` where a replay counts ``ARRIVAL``); the gateway
    ledger is excluded for the same reason (replays have no door).
    """
    return {
        "records": {
            aid: (
                record.arrival_time,
                record.admit_time,
                record.first_scheduled_time,
                record.finish_time,
                record.outcome,
                record.replica,
                record.migrations,
                record.preemptions,
                record.num_batches,
                record.total_tokens,
            )
            for aid, record in sorted(result.records.items())
        },
        "counters": (
            result.migrations,
            result.reroutes,
            result.rebalance_drains,
            result.violations,
            result.total_tokens,
            result.total_microbatches,
        ),
        "makespans": [r.makespan for r in result.replicas],
        "replans": [r.replans for r in result.replicas],
        "wave_estimates": [r.wave_estimates for r in result.replicas],
        "assignments": sorted(replica_set.router.assignments.items()),
        "streams": [
            [
                (
                    mb.replica,
                    sorted(
                        (a.adapter_id, a.global_batch, a.sample.index)
                        for a in mb.assignments
                    ),
                )
                for mb in replica.stream
            ]
            for replica in replica_set.replicas
        ],
    }


def run_session(config, ops):
    """Drive one scripted gateway session; return its fingerprint + trace.

    ``ops`` is a list of ``("submit", samples, gbs, tenant, deadline)``
    or ``("cancel", adapter_index)`` tuples, each followed by a clock
    step drawn from :data:`STEPS` by position.
    """

    async def drive():
        clock = ManualClock()
        gateway = config.build_gateway(COST, SCHED, clock=clock)
        submitted = []
        for position, op in enumerate(ops):
            if op[0] == "submit":
                _, samples, gbs, tenant, deadline = op
                adapter_id = len(submitted)
                outcome = await gateway.submit(
                    make_job(adapter_id, samples, gbs),
                    tenant=tenant,
                    deadline=deadline,
                )
                submitted.append(outcome)
            else:
                _, index = op
                if submitted:
                    await gateway.cancel(index % len(submitted))
            clock.advance(STEPS[position % len(STEPS)])
        result = await gateway.drain()
        return gateway, result

    gateway, result = asyncio.run(drive())
    return gateway, result, gateway.recorded_trace()


def replay(config, trace, kernel):
    """Run the recorded trace through the plain sim path."""
    executors, fleet_config = config.build(COST, SCHED)
    replica_set = ReplicaSet(executors, replace(fleet_config, kernel=kernel))
    result = replica_set.run(trace)
    return fingerprint(replica_set, result)


def assert_conformant(config, ops):
    gateway, live_result, trace = run_session(config, ops)
    live = fingerprint(gateway.replica_set, live_result.fleet)
    assert replay(config, trace, "event") == live
    assert replay(config, trace, "lockstep") == live
    # Ledger conservation rides along on every conformance run.
    stats = live_result.stats
    assert stats.submitted == stats.accepted + stats.shed_total()
    assert stats.accepted == stats.released + stats.cancelled
    assert stats.released == len(trace) == len(live_result.records)
    return live_result, trace


class TestPinnedScenarios:
    def test_plain_session_replays_bit_identical(self):
        config = ServeConfig(num_replicas=2, slots=2, window_batches=1)
        ops = [("submit", 8, 4, "default", None) for _ in range(5)]
        result, trace = assert_conformant(config, ops)
        assert len(trace) == 5
        assert result.stats.shed_total() == 0

    def test_overloaded_session_replays_bit_identical(self):
        # Tight door limits force real sheds; the shed submissions must
        # leave no trace in the fleet.
        config = ServeConfig(
            num_replicas=2,
            slots=2,
            window_batches=1,
            gateway_rate=2.0,
            gateway_burst=1.0,
            gateway_queue_bound=2,
        )
        ops = [
            ("submit", 8, 4, "a" if i % 2 else "b", None) for i in range(8)
        ]
        result, trace = assert_conformant(config, ops)
        assert result.stats.shed_total() > 0
        assert len(trace) == result.stats.released < 8

    def test_holds_and_cancels_replay_bit_identical(self):
        # Held jobs release at their own (future) due stamps during the
        # drain; a cancelled one never reaches the fleet.
        config = ServeConfig(
            num_replicas=2, slots=2, window_batches=1, gateway_hold=0.4
        )
        ops = [
            ("submit", 8, 4, "default", None),
            ("submit", 6, 3, "default", None),
            ("cancel", 1),
            ("submit", 8, 4, "default", None),
            ("submit", 4, 4, "default", 500.0),
        ]
        result, trace = assert_conformant(config, ops)
        assert result.stats.cancelled == 1
        assert len(trace) == 3

    def test_gated_deadline_session_replays_bit_identical(self):
        # Door admission (deadline gate) sheds infeasible submissions;
        # generous ones flow through and the fleet's own gate re-checks.
        config = ServeConfig(
            num_replicas=1, slots=2, window_batches=1, deadline_gate=True
        )
        ops = [
            ("submit", 8, 4, "default", 0.01),  # infeasible at the door
            ("submit", 8, 4, "default", 500.0),
            ("submit", 6, 3, "default", None),
        ]
        result, trace = assert_conformant(config, ops)
        assert result.stats.sheds["infeasible"] == 1
        assert len(trace) == 2

    def test_rebalancing_session_replays_bit_identical(self):
        # A seconds-skew rebalance trigger makes the fleet actually
        # migrate mid-session; conformance must survive control events
        # interleaved with live ingresses.
        config = ServeConfig(
            num_replicas=2,
            routing="round_robin",
            slots=2,
            window_batches=1,
            migration_time_threshold=0.05,
        )
        ops = [("submit", 10 - i, 4, "default", None) for i in range(6)]
        assert_conformant(config, ops)

    def test_repeat_sessions_are_deterministic(self):
        config = ServeConfig(
            num_replicas=2,
            slots=2,
            window_batches=1,
            gateway_rate=3.0,
            gateway_hold=0.2,
        )
        ops = [
            ("submit", 8, 4, "a", None),
            ("submit", 6, 3, "b", None),
            ("cancel", 0),
            ("submit", 8, 4, "a", 400.0),
            ("submit", 4, 4, "b", None),
        ]
        first_gateway, first_result, first_trace = run_session(config, ops)
        second_gateway, second_result, second_trace = run_session(config, ops)
        assert first_trace == second_trace
        assert fingerprint(
            first_gateway.replica_set, first_result.fleet
        ) == fingerprint(second_gateway.replica_set, second_result.fleet)


op_spec = st.one_of(
    st.tuples(
        st.just("submit"),
        st.integers(min_value=4, max_value=10),  # samples
        st.sampled_from([3, 4]),  # global batch size
        st.sampled_from(["a", "b", "c"]),  # tenant
        st.sampled_from([None, 0.01, 400.0]),  # deadline (one infeasible)
    ),
    st.tuples(st.just("cancel"), st.integers(min_value=0, max_value=9)),
)

limit_spec = st.tuples(
    st.sampled_from([None, 1.5, 4.0]),  # gateway_rate
    st.sampled_from([1.0, 3.0]),  # gateway_burst
    st.sampled_from([None, 2]),  # gateway_queue_bound
    st.sampled_from([None, 0.5]),  # gateway_fairness
    st.sampled_from([0.0, 0.3]),  # gateway_hold
)


@pytest.mark.slow
class TestRandomizedConformance:
    @settings(max_examples=25, deadline=None)
    @given(
        ops=st.lists(op_spec, min_size=1, max_size=10),
        limits=limit_spec,
        num_replicas=st.sampled_from([1, 2]),
        gate=st.booleans(),
    )
    def test_random_interleavings_replay_bit_identical(
        self, ops, limits, num_replicas, gate
    ):
        rate, burst, bound, fairness, hold = limits
        config = ServeConfig(
            num_replicas=num_replicas,
            slots=2,
            window_batches=1,
            deadline_gate=gate,
            gateway_rate=rate,
            gateway_burst=burst,
            gateway_queue_bound=bound,
            gateway_fairness=fairness,
            gateway_hold=hold,
        )
        result, _ = assert_conformant(config, list(ops))
        for outcome in result.stats.sheds.values():
            assert outcome >= 0


class TestTraceShape:
    def test_recorded_trace_is_release_ordered_and_stamped(self):
        config = ServeConfig(
            num_replicas=1, slots=2, window_batches=1, gateway_hold=0.25
        )
        _, _, trace = run_session(
            config, [("submit", 8, 4, "default", None) for _ in range(4)]
        )
        stamps = [job.arrival_time for job in trace]
        assert stamps == sorted(stamps)
        # Held releases land at submit stamp + hold, not the drain stamp.
        assert stamps[0] == pytest.approx(0.25)

    def test_shed_submissions_never_appear_in_the_trace(self):
        config = ServeConfig(
            num_replicas=1,
            slots=2,
            window_batches=1,
            gateway_rate=1.0,
            gateway_burst=1.0,
        )
        gateway, result, trace = run_session(
            config, [("submit", 8, 4, "default", None) for _ in range(4)]
        )

        async def statuses():
            return [await gateway.status(a) for a in range(4)]

        states = asyncio.run(statuses())
        shed_ids = {a for a, state in enumerate(states) if state == "shed"}
        assert shed_ids  # the bucket really shed something
        assert shed_ids.isdisjoint({job.adapter_id for job in trace})
        assert all(
            isinstance(outcome, GatewayOverload) or True for outcome in states
        )
