"""Migration losslessness: moving a mid-training job between replicas.

The multi-replica acceptance bar: a job that starts training on one
pipeline replica, is migrated (adapter weights + AdamW moments + progress
counters) to another replica mid-stream by the rebalancer, and finishes
there must produce final adapter weights **identical (atol=0)** to
training the job alone -- and therefore also identical to serving it
unmigrated, since online serving is already bit-exact
(``test_online_losslessness.py``).  The replicas' engines share the same
frozen base weights (same model seed), which is the deployment contract
``docs/serving.md`` documents.
"""

import numpy as np
import pytest

from repro.baselines import train_job_sequentially
from repro.core.lora import LoRAConfig
from repro.data.dataset import FinetuneDataset, Sample
from repro.models import TINY, TinyLoRATransformer
from repro.runtime import MultiLoRAEngine, NumericJob
from repro.scheduler import AdapterJob, SchedulerConfig, find_violations
from repro.serve import (
    NumericExecutor,
    OrchestratorConfig,
    ReplicaSet,
    ReplicaSetConfig,
    ServeJob,
    SlotAdmission,
)

MODEL_SEED = 11


class StickyRouting:
    """Pin every tenant to replica 0 so only the rebalancer spreads load."""

    def choose(self, job, replicas):
        return 0


def make_serve_job(rng, adapter_id, rank, num_samples, gbs, arrival):
    streams = [
        rng.integers(0, TINY.vocab_size, int(rng.integers(4, 12)))
        for _ in range(num_samples)
    ]
    numeric = NumericJob(
        adapter_id=adapter_id,
        lora=LoRAConfig(rank=rank, alpha=1.0, dropout=0.0,
                        adapter_id=adapter_id),
        token_streams=streams,
        global_batch_size=gbs,
    )
    dataset = FinetuneDataset(
        adapter_id,
        [Sample(adapter_id, i, len(t)) for i, t in enumerate(streams)],
    )
    return ServeJob(
        job=AdapterJob(adapter_id, dataset, gbs),
        arrival_time=arrival,
        numeric=numeric,
    )


def skewed_workload():
    """One long tenant at t=0, two short tenants shortly after.

    Sticky routing piles all three onto replica 0; once the short jobs
    arrive the outstanding-batch skew versus the idle replica 1 exceeds
    the threshold and the long tenant -- mid-training by then -- is the
    move that best evens the pair, forcing a state-carrying migration.
    """
    rng = np.random.default_rng(0)
    return [
        make_serve_job(rng, 0, 2, 12, 2, arrival=0.0),   # 6 global batches
        make_serve_job(rng, 1, 3, 4, 2, arrival=1.0),    # 2 global batches
        make_serve_job(rng, 2, 2, 4, 2, arrival=1.0),    # 2 global batches
    ]


class TestMigrationLosslessness:
    @pytest.fixture(scope="class")
    def served(self):
        workload = skewed_workload()
        models = [
            TinyLoRATransformer(TINY, np.random.default_rng(MODEL_SEED))
            for _ in range(2)
        ]
        executors = [
            NumericExecutor(MultiLoRAEngine(model, exact_accumulation=True))
            for model in models
        ]
        config = ReplicaSetConfig(
            orchestrator=OrchestratorConfig(
                scheduler=SchedulerConfig(capacity=64, padding_multiple=1,
                                          num_stages=2, use_milp=False,
                                          group_size=2),
                window_batches=1,
                admission=SlotAdmission(3),
            ),
            routing=StickyRouting(),
            migration_threshold=8,
        )
        replica_set = ReplicaSet(executors, config)
        result = replica_set.run(workload)
        return workload, models, executors, replica_set, result

    def test_a_migration_actually_happened(self, served):
        _, _, _, replica_set, result = served
        assert result.migrations >= 1
        probe = result.records[0]
        assert probe.migrations >= 1
        assert probe.replica == 1
        assert probe.finish_time is not None

    def test_migrated_job_trained_on_both_replicas(self, served):
        _, _, _, replica_set, result = served
        for index, replica in enumerate(replica_set.replicas):
            batches = {
                a.global_batch
                for mb in replica.stream
                for a in mb.assignments
                if a.adapter_id == 0
            }
            assert batches, f"replica {index} never trained the probe"

    def test_streams_stay_bubble_safe(self, served):
        _, _, _, replica_set, result = served
        assert result.violations == 0
        for replica in replica_set.replicas:
            assert find_violations(replica.stream, 2) == []

    def test_migrated_job_weights_bit_identical_to_sequential(self, served):
        workload, models, _, _, result = served
        probe = workload[0]
        reference = TinyLoRATransformer(TINY, np.random.default_rng(MODEL_SEED))
        train_job_sequentially(reference, probe.numeric)
        final_model = models[result.records[0].replica]
        online = final_model.adapter_state(0)
        solo = reference.adapter_state(0)
        for key in online:
            assert np.array_equal(online[key].a, solo[key].a)
            assert np.array_equal(online[key].b, solo[key].b)

    def test_every_tenant_bit_identical_to_sequential(self, served):
        workload, models, _, _, result = served
        for job in workload:
            reference = TinyLoRATransformer(
                TINY, np.random.default_rng(MODEL_SEED)
            )
            train_job_sequentially(reference, job.numeric)
            final_model = models[result.records[job.adapter_id].replica]
            online = final_model.adapter_state(job.adapter_id)
            solo = reference.adapter_state(job.adapter_id)
            for key in online:
                assert np.array_equal(online[key].a, solo[key].a)
                assert np.array_equal(online[key].b, solo[key].b)

    def test_loss_history_travels_with_the_job(self, served):
        workload, _, executors, _, result = served
        probe = workload[0]
        reference = TinyLoRATransformer(TINY, np.random.default_rng(MODEL_SEED))
        solo = train_job_sequentially(reference, probe.numeric)
        final_engine = executors[result.records[0].replica].engine
        assert final_engine.losses(0) == solo.losses[0]
        assert final_engine.steps_done(0) == probe.numeric.num_global_batches()
