"""Tests for job arrival processes."""

import numpy as np
import pytest

from repro.data.arrivals import poisson_times, trace_times
from repro.errors import ReproError


class TestPoissonTimes:
    def test_deterministic_per_seed(self):
        assert poisson_times(10, 0.5, rng=3) == poisson_times(10, 0.5, rng=3)

    def test_strictly_increasing_and_positive(self):
        times = poisson_times(50, 2.0, rng=1)
        assert len(times) == 50
        assert times[0] > 0
        assert all(b > a for a, b in zip(times, times[1:]))

    def test_rate_sets_mean_gap(self):
        times = poisson_times(4000, 0.25, rng=0)
        gaps = np.diff([0.0] + times)
        assert gaps.mean() == pytest.approx(4.0, rel=0.1)

    def test_rejects_bad_args(self):
        with pytest.raises(ReproError):
            poisson_times(0, 1.0)
        with pytest.raises(ReproError):
            poisson_times(5, 0.0)


class TestTraceTimes:
    def test_sorts_and_floats(self):
        assert trace_times([3, 1.5, 2]) == [1.5, 2.0, 3.0]

    def test_rejects_empty_and_negative(self):
        with pytest.raises(ReproError):
            trace_times([])
        with pytest.raises(ReproError):
            trace_times([1.0, -0.1])
