"""Tests for the batching schemes of Figure 2 plus knapsack packing."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data import (
    LengthHistogram,
    greedy_knapsack,
    onthefly_microbatches,
    pad_batches,
    padding_waste,
    prepack_dataset,
)
from repro.errors import ReproError

LENGTHS = [100, 300, 50, 400, 250, 120, 80, 500]


class TestPadding:
    def test_pads_to_local_max(self):
        batches = pad_batches(LENGTHS, microbatch_size=4)
        assert batches[0].padded_length == 400
        assert batches[0].total_tokens == 1600
        assert batches[0].wasted_tokens == 1600 - 850

    def test_preset_length(self):
        batches = pad_batches(LENGTHS, 4, preset_length=512)
        assert all(b.padded_length == 512 for b in batches)

    def test_sample_exceeding_preset_rejected(self):
        with pytest.raises(ReproError):
            pad_batches(LENGTHS, 4, preset_length=300)

    def test_waste_fraction(self):
        batches = pad_batches([100, 100], 2)
        assert padding_waste(batches) == 0.0
        batches = pad_batches([100, 300], 2)
        assert padding_waste(batches) == pytest.approx(200 / 600)


class TestPrepacking:
    def test_packs_in_order_until_capacity(self):
        packs = prepack_dataset(LENGTHS, capacity=500)
        flat = [l for p in packs for l in p.lengths]
        assert flat == LENGTHS  # order preserved
        assert all(p.total_tokens <= 500 for p in packs)

    def test_variable_sample_count(self):
        # The training-semantics drawback the paper notes.
        packs = prepack_dataset(LENGTHS, capacity=500)
        counts = {p.sample_count for p in packs}
        assert len(counts) > 1

    def test_oversized_sample_rejected(self):
        with pytest.raises(ReproError):
            prepack_dataset([600], capacity=500)


class TestOnTheFly:
    def test_deterministic_sample_count(self):
        mbs = onthefly_microbatches(LENGTHS, 4)
        assert [len(m) for m in mbs] == [4, 4]

    def test_token_counts_vary(self):
        # Figure 6: variable tokens per microbatch at fixed sample count.
        mbs = onthefly_microbatches(LENGTHS, 4)
        totals = [sum(m) for m in mbs]
        assert totals[0] != totals[1]

    def test_no_tokens_lost(self):
        mbs = onthefly_microbatches(LENGTHS, 3)
        assert sum(sum(m) for m in mbs) == sum(LENGTHS)


class TestLengthHistogram:
    def test_buckets_are_left_open(self):
        hist = LengthHistogram.from_lengths([1, 100, 101, 200, 201], 100)
        # (0, 100], (100, 200], (200, 300]
        assert hist.counts == (2, 2, 1)
        assert hist.num_samples == 5

    def test_empty_lengths_give_empty_counts(self):
        hist = LengthHistogram.from_lengths([], 64)
        assert hist.counts == ()
        assert hist.num_samples == 0

    def test_merged_pads_shorter_counts(self):
        a = LengthHistogram.from_lengths([50, 150], 100)
        b = LengthHistogram.from_lengths([250], 100)
        merged = a.merged(b)
        assert merged.counts == (1, 1, 1)

    def test_merged_width_mismatch_rejected(self):
        a = LengthHistogram.from_lengths([50], 100)
        b = LengthHistogram.from_lengths([50], 64)
        with pytest.raises(ReproError):
            a.merged(b)

    def test_nonpositive_length_rejected(self):
        with pytest.raises(ReproError):
            LengthHistogram.from_lengths([0], 100)

    def test_bad_bucket_width_rejected(self):
        with pytest.raises(ReproError):
            LengthHistogram(bucket_width=0, counts=(1,))


class TestGreedyKnapsack:
    def test_first_fit_decreasing(self):
        packs = greedy_knapsack(LENGTHS, capacity=512)
        # Longest first: 500 opens knapsack 0; 400 cannot join it.
        assert packs[0][0] == 7
        assert all(
            sum(LENGTHS[i] for i in pack) <= 512 for pack in packs
        )

    def test_every_index_exactly_once(self):
        packs = greedy_knapsack(LENGTHS, capacity=600)
        assert sorted(i for pack in packs for i in pack) == list(
            range(len(LENGTHS))
        )

    def test_deterministic(self):
        assert greedy_knapsack(LENGTHS, 512) == greedy_knapsack(LENGTHS, 512)

    def test_equal_lengths_break_ties_by_index(self):
        packs = greedy_knapsack([100, 100, 100], capacity=200)
        assert packs == [[0, 1], [2]]

    def test_bucketing_coarsens_the_sort(self):
        # With width 1000 every length shares a bucket, so the
        # secondary exact-length sort still orders them longest-first.
        packs = greedy_knapsack([100, 300], capacity=1000, bucket_width=1000)
        assert packs == [[1, 0]]

    def test_empty_lengths_give_no_knapsacks(self):
        assert greedy_knapsack([], capacity=512) == []

    def test_oversized_length_rejected(self):
        with pytest.raises(ReproError):
            greedy_knapsack([600], capacity=500)

    def test_nonpositive_length_rejected(self):
        with pytest.raises(ReproError):
            greedy_knapsack([0], capacity=500)

    def test_bad_capacity_rejected(self):
        with pytest.raises(ReproError):
            greedy_knapsack([100], capacity=0)

    def test_bad_bucket_width_rejected(self):
        with pytest.raises(ReproError):
            greedy_knapsack([100], capacity=500, bucket_width=0)


class TestProperties:
    @given(
        lengths=st.lists(st.integers(1, 1000), min_size=1, max_size=50),
        mbs=st.integers(1, 8),
    )
    @settings(max_examples=50, deadline=None)
    def test_onthefly_partition_is_exact(self, lengths, mbs):
        batches = onthefly_microbatches(lengths, mbs)
        assert [l for b in batches for l in b] == lengths

    @given(
        lengths=st.lists(st.integers(1, 500), min_size=1, max_size=50),
        capacity=st.integers(500, 2000),
    )
    @settings(max_examples=50, deadline=None)
    def test_prepack_respects_capacity_and_order(self, lengths, capacity):
        packs = prepack_dataset(lengths, capacity)
        assert all(p.total_tokens <= capacity for p in packs)
        assert [l for p in packs for l in p.lengths] == lengths

    @given(
        lengths=st.lists(st.integers(1, 500), min_size=1, max_size=50),
        mbs=st.integers(1, 8),
    )
    @settings(max_examples=50, deadline=None)
    def test_padding_never_negative(self, lengths, mbs):
        batches = pad_batches(lengths, mbs)
        assert all(b.wasted_tokens >= 0 for b in batches)
        assert 0.0 <= padding_waste(batches) < 1.0

    @given(
        lengths=st.lists(st.integers(1, 500), min_size=0, max_size=50),
        capacity=st.integers(500, 2000),
        bucket_width=st.sampled_from([1, 64, 128]),
    )
    @settings(max_examples=50, deadline=None)
    def test_knapsack_is_a_partition_within_capacity(
        self, lengths, capacity, bucket_width
    ):
        packs = greedy_knapsack(lengths, capacity, bucket_width=bucket_width)
        assert sorted(i for p in packs for i in p) == list(range(len(lengths)))
        assert all(sum(lengths[i] for i in p) <= capacity for p in packs)
        # Determinism: a second call reproduces the packing exactly.
        assert packs == greedy_knapsack(
            lengths, capacity, bucket_width=bucket_width
        )

    @given(lengths=st.lists(st.integers(1, 500), min_size=1, max_size=50))
    @settings(max_examples=50, deadline=None)
    def test_knapsack_never_beats_the_token_lower_bound(self, lengths):
        # FFD can never use fewer bins than ceil(total / capacity).
        capacity = 500
        packs = greedy_knapsack(lengths, capacity)
        assert len(packs) >= -(-sum(lengths) // capacity)

    @given(
        lengths=st.lists(st.integers(1, 500), min_size=0, max_size=60),
        width=st.sampled_from([32, 100, 250]),
    )
    @settings(max_examples=50, deadline=None)
    def test_histogram_counts_every_sample_once(self, lengths, width):
        hist = LengthHistogram.from_lengths(lengths, width)
        assert hist.num_samples == len(lengths)
        for length in lengths:
            bucket = (length - 1) // width
            assert hist.counts[bucket] >= 1
