"""Tests for the three batching schemes of Figure 2."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data import (
    onthefly_microbatches,
    pad_batches,
    padding_waste,
    prepack_dataset,
)
from repro.errors import ReproError

LENGTHS = [100, 300, 50, 400, 250, 120, 80, 500]


class TestPadding:
    def test_pads_to_local_max(self):
        batches = pad_batches(LENGTHS, microbatch_size=4)
        assert batches[0].padded_length == 400
        assert batches[0].total_tokens == 1600
        assert batches[0].wasted_tokens == 1600 - 850

    def test_preset_length(self):
        batches = pad_batches(LENGTHS, 4, preset_length=512)
        assert all(b.padded_length == 512 for b in batches)

    def test_sample_exceeding_preset_rejected(self):
        with pytest.raises(ReproError):
            pad_batches(LENGTHS, 4, preset_length=300)

    def test_waste_fraction(self):
        batches = pad_batches([100, 100], 2)
        assert padding_waste(batches) == 0.0
        batches = pad_batches([100, 300], 2)
        assert padding_waste(batches) == pytest.approx(200 / 600)


class TestPrepacking:
    def test_packs_in_order_until_capacity(self):
        packs = prepack_dataset(LENGTHS, capacity=500)
        flat = [l for p in packs for l in p.lengths]
        assert flat == LENGTHS  # order preserved
        assert all(p.total_tokens <= 500 for p in packs)

    def test_variable_sample_count(self):
        # The training-semantics drawback the paper notes.
        packs = prepack_dataset(LENGTHS, capacity=500)
        counts = {p.sample_count for p in packs}
        assert len(counts) > 1

    def test_oversized_sample_rejected(self):
        with pytest.raises(ReproError):
            prepack_dataset([600], capacity=500)


class TestOnTheFly:
    def test_deterministic_sample_count(self):
        mbs = onthefly_microbatches(LENGTHS, 4)
        assert [len(m) for m in mbs] == [4, 4]

    def test_token_counts_vary(self):
        # Figure 6: variable tokens per microbatch at fixed sample count.
        mbs = onthefly_microbatches(LENGTHS, 4)
        totals = [sum(m) for m in mbs]
        assert totals[0] != totals[1]

    def test_no_tokens_lost(self):
        mbs = onthefly_microbatches(LENGTHS, 3)
        assert sum(sum(m) for m in mbs) == sum(LENGTHS)


class TestProperties:
    @given(
        lengths=st.lists(st.integers(1, 1000), min_size=1, max_size=50),
        mbs=st.integers(1, 8),
    )
    @settings(max_examples=50, deadline=None)
    def test_onthefly_partition_is_exact(self, lengths, mbs):
        batches = onthefly_microbatches(lengths, mbs)
        assert [l for b in batches for l in b] == lengths

    @given(
        lengths=st.lists(st.integers(1, 500), min_size=1, max_size=50),
        capacity=st.integers(500, 2000),
    )
    @settings(max_examples=50, deadline=None)
    def test_prepack_respects_capacity_and_order(self, lengths, capacity):
        packs = prepack_dataset(lengths, capacity)
        assert all(p.total_tokens <= capacity for p in packs)
        assert [l for p in packs for l in p.lengths] == lengths

    @given(
        lengths=st.lists(st.integers(1, 500), min_size=1, max_size=50),
        mbs=st.integers(1, 8),
    )
    @settings(max_examples=50, deadline=None)
    def test_padding_never_negative(self, lengths, mbs):
        batches = pad_batches(lengths, mbs)
        assert all(b.wasted_tokens >= 0 for b in batches)
        assert 0.0 <= padding_waste(batches) < 1.0
