"""Tests for datasets and global-batch iteration."""

import pytest

from repro.data import FinetuneDataset, Sample, synthetic_dataset
from repro.errors import ReproError


class TestSample:
    def test_positive_length_required(self):
        with pytest.raises(ReproError):
            Sample(adapter_id=0, index=0, length=0)


class TestFinetuneDataset:
    def test_empty_rejected(self):
        with pytest.raises(ReproError):
            FinetuneDataset(adapter_id=0, samples=[])

    def test_lengths_and_totals(self):
        ds = FinetuneDataset(0, [Sample(0, i, l) for i, l in enumerate([10, 20, 30])])
        assert len(ds) == 3
        assert ds.total_tokens() == 60
        assert ds.mean_length() == 20.0

    def test_global_batches_preserve_order(self):
        ds = FinetuneDataset(0, [Sample(0, i, 10 + i) for i in range(7)])
        batches = ds.global_batches(3)
        assert [len(b) for b in batches] == [3, 3, 1]
        flat = [s.index for b in batches for s in b]
        assert flat == list(range(7))

    def test_invalid_gbs_rejected(self):
        ds = FinetuneDataset(0, [Sample(0, 0, 10)])
        with pytest.raises(ReproError):
            ds.global_batches(0)


class TestSyntheticDataset:
    def test_deterministic_per_seed_and_adapter(self):
        a = synthetic_dataset(0, "xsum", 50, seed=3)
        b = synthetic_dataset(0, "xsum", 50, seed=3)
        assert [s.length for s in a.samples] == [s.length for s in b.samples]

    def test_different_adapters_get_different_streams(self):
        a = synthetic_dataset(0, "xsum", 50, seed=3)
        b = synthetic_dataset(1, "xsum", 50, seed=3)
        assert [s.length for s in a.samples] != [s.length for s in b.samples]

    def test_accepts_distribution_object(self):
        from repro.data import WIKISUM

        ds = synthetic_dataset(2, WIKISUM, 10, seed=1)
        assert ds.source == "wikisum"
        assert len(ds) == 10

    def test_sample_metadata(self):
        ds = synthetic_dataset(5, "mixed", 4, seed=0)
        assert all(s.adapter_id == 5 for s in ds.samples)
        assert [s.index for s in ds.samples] == [0, 1, 2, 3]
