"""Tests for the synthetic dataset length distributions (Figure 13)."""

import numpy as np
import pytest

from repro.data import (
    CNN_DAILYMAIL,
    MIXED,
    WIKISUM,
    XSUM,
    get_distribution,
    list_distributions,
)


class TestRegistry:
    def test_paper_datasets_present(self):
        assert set(list_distributions()) == {
            "xsum", "cnn_dailymail", "wikisum", "mixed"
        }

    def test_lookup(self):
        assert get_distribution("xsum") is XSUM

    def test_unknown_raises(self):
        with pytest.raises(KeyError):
            get_distribution("c4")


class TestShapes:
    def test_mean_ordering_matches_figure_13(self):
        # XSum shortest, CNN/DailyMail middle, WikiSum longest.
        assert XSUM.mean() < CNN_DAILYMAIL.mean() < WIKISUM.mean()

    def test_empirical_means_match_analytical(self):
        rng = np.random.default_rng(0)
        for dist in (XSUM, CNN_DAILYMAIL):
            lengths = dist.sample(20000, rng)
            assert lengths.mean() == pytest.approx(dist.mean(), rel=0.05)

    def test_lengths_clipped(self):
        rng = np.random.default_rng(1)
        lengths = WIKISUM.sample(20000, rng)
        assert lengths.min() >= WIKISUM.min_len
        assert lengths.max() <= WIKISUM.max_len

    def test_samples_are_integers(self):
        rng = np.random.default_rng(2)
        assert XSUM.sample(10, rng).dtype == np.int64

    def test_determinism(self):
        a = XSUM.sample(100, np.random.default_rng(7))
        b = XSUM.sample(100, np.random.default_rng(7))
        np.testing.assert_array_equal(a, b)


class TestMixture:
    def test_mixture_mean_is_average(self):
        expected = (XSUM.mean() + CNN_DAILYMAIL.mean() + WIKISUM.mean()) / 3
        assert MIXED.mean() == pytest.approx(expected)

    def test_mixture_has_higher_variance_than_components(self):
        # The Mix dataset's microbatch variance motivates Figure 6.
        rng = np.random.default_rng(3)
        mixed = MIXED.sample(20000, rng)
        cnn = CNN_DAILYMAIL.sample(20000, np.random.default_rng(3))
        assert mixed.std() > cnn.std()

    def test_mixture_bounds(self):
        assert MIXED.min_len == XSUM.min_len
        assert MIXED.max_len == WIKISUM.max_len
