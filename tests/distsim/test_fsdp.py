"""Tests for the FSDP step simulator."""

import pytest

from repro.distsim import ClusterSpec, simulate_fsdp_step
from repro.errors import SimulationError
from repro.gpu import H100
from repro.models import LLAMA3_70B, LayerCostModel, MicrobatchShape


@pytest.fixture
def cost():
    return LayerCostModel(LLAMA3_70B, H100, strategy="torch")


def cluster(n=4):
    return ClusterSpec(gpu=H100, num_gpus=n)


def shapes(tokens_per_rank, dp=4):
    return [[MicrobatchShape(t, float(t) ** 2 / 4)] for t in tokens_per_rank[:dp]]


class TestFSDPStep:
    def test_no_ranks_rejected(self, cost):
        with pytest.raises(SimulationError):
            simulate_fsdp_step([], cost, cluster())

    def test_step_time_positive(self, cost):
        result = simulate_fsdp_step(shapes([2048] * 4), cost, cluster())
        assert result.step_time > 0
        assert result.compute_time > 0

    def test_slowest_rank_dominates(self, cost):
        balanced = simulate_fsdp_step(shapes([2048] * 4), cost, cluster())
        skewed = simulate_fsdp_step(shapes([512, 512, 512, 6144]), cost,
                                    cluster())
        # Same total tokens (8192 vs 7680, close), but the skewed step is
        # gated by the 6144-token rank.
        assert skewed.step_time > balanced.step_time

    def test_comm_exposed_at_small_batches(self, cost):
        small = simulate_fsdp_step(shapes([256] * 4), cost, cluster())
        large = simulate_fsdp_step(shapes([8192] * 4), cost, cluster())
        # Exposed communication per token shrinks as compute grows: the
        # Figure 5 overlap effect.
        assert small.exposed_comm / (4 * 256) > large.exposed_comm / (4 * 8192)

    def test_throughput_grows_with_tokens_per_rank(self, cost):
        results = {}
        for tokens in (512, 2048, 8192):
            r = simulate_fsdp_step(shapes([tokens] * 4), cost, cluster())
            results[tokens] = 4 * tokens / r.step_time
        assert results[512] < results[2048] < results[8192]

    def test_single_rank_has_no_comm(self, cost):
        result = simulate_fsdp_step(shapes([2048], dp=1), cost,
                                    ClusterSpec(gpu=H100, num_gpus=1))
        assert result.exposed_comm == pytest.approx(0.0)

    def test_recompute_increases_step_time(self, cost):
        base = simulate_fsdp_step(shapes([4096] * 4), cost, cluster())
        recomputed = simulate_fsdp_step(shapes([4096] * 4), cost, cluster(),
                                        recompute=True)
        assert recomputed.step_time > base.step_time
