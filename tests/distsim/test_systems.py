"""End-to-end system comparisons: the Figure 14 ordering must hold."""

import pytest

from repro.data import synthetic_dataset
from repro.distsim import (
    ClusterSpec,
    run_lorafusion,
    run_megatron_fsdp,
    run_megatron_pp,
    run_mlora,
    run_single_gpu_sequential,
)
from repro.gpu import H100, L40S
from repro.models import LLAMA3_8B, LLAMA3_70B
from repro.scheduler import SchedulerConfig


def jobs_for(dataset="mixed", n=4, samples=16, gbs=8):
    return [
        AdapterJob(a, synthetic_dataset(a, dataset, samples, seed=5), gbs)
        for a in range(n)
    ]


from repro.scheduler import AdapterJob  # noqa: E402  (used above)


@pytest.fixture(scope="module")
def reports():
    jobs = jobs_for()
    cluster = ClusterSpec(gpu=H100, num_gpus=4)
    config = SchedulerConfig(capacity=8192, num_stages=4, use_milp=False)
    return {
        "fsdp": run_megatron_fsdp(jobs, LLAMA3_70B, cluster),
        "pp": run_megatron_pp(jobs, LLAMA3_70B, cluster, capacity=8192),
        "mlora": run_mlora(jobs, LLAMA3_70B, cluster, capacity=8192),
        "lorafusion": run_lorafusion(jobs, LLAMA3_70B, cluster,
                                     scheduler_config=config, capacity=8192),
    }


class TestFigure14Ordering:
    def test_lorafusion_beats_all_baselines(self, reports):
        lf = reports["lorafusion"].tokens_per_second
        for name in ("fsdp", "pp", "mlora"):
            assert lf > reports[name].tokens_per_second, name

    def test_mlora_beats_megatron_pp(self, reports):
        assert (reports["mlora"].tokens_per_second
                > reports["pp"].tokens_per_second)

    def test_megatron_pp_slower_than_fsdp(self, reports):
        # Figure 14, 70B: PP reaches only 0.74-0.96x of FSDP.
        ratio = (reports["pp"].tokens_per_second
                 / reports["fsdp"].tokens_per_second)
        assert 0.5 < ratio < 1.0

    def test_speedup_magnitudes_in_paper_band(self, reports):
        base = reports["fsdp"].tokens_per_second
        lf = reports["lorafusion"].tokens_per_second / base
        vs_mlora = (reports["lorafusion"].tokens_per_second
                    / reports["mlora"].tokens_per_second)
        # Paper: LoRAFusion up to 1.96x vs Megatron, up to 1.46x vs mLoRA.
        assert 1.1 < lf < 2.3
        assert 1.0 < vs_mlora < 1.6

    def test_bubble_ordering(self, reports):
        # Megatron flushes every batch; mLoRA fills with other adapters;
        # LoRAFusion additionally balances microbatches.
        assert (reports["lorafusion"].bubble_ratio
                < reports["pp"].bubble_ratio)
        assert reports["mlora"].bubble_ratio < reports["pp"].bubble_ratio

    def test_all_tokens_processed(self, reports):
        totals = {r.total_tokens for r in reports.values()}
        assert len(totals) == 1  # every system trains the same tokens


class TestAblationSwitches:
    def test_fused_kernels_alone_help(self):
        jobs = jobs_for(samples=8)
        cluster = ClusterSpec(gpu=H100, num_gpus=4)
        with_fuse = run_lorafusion(jobs, LLAMA3_70B, cluster,
                                   use_scheduler=False, capacity=8192)
        without = run_mlora(jobs, LLAMA3_70B, cluster, capacity=8192)
        assert with_fuse.tokens_per_second > without.tokens_per_second

    def test_scheduler_alone_helps(self):
        # Needs a long enough stream for balance gains to beat ramp noise.
        jobs = jobs_for(samples=16)
        cluster = ClusterSpec(gpu=H100, num_gpus=4)
        config = SchedulerConfig(capacity=8192, num_stages=4, use_milp=False)
        sched_only = run_lorafusion(jobs, LLAMA3_70B, cluster,
                                    scheduler_config=config,
                                    use_fused_kernels=False, capacity=8192)
        neither = run_mlora(jobs, LLAMA3_70B, cluster, capacity=8192)
        assert sched_only.tokens_per_second > neither.tokens_per_second


class TestSingleGPU:
    def test_fused_beats_torch_on_one_gpu(self):
        jobs = jobs_for(samples=8)
        cluster = ClusterSpec(gpu=H100, num_gpus=1)
        torch = run_single_gpu_sequential(jobs, LLAMA3_8B, cluster,
                                          strategy="torch")
        fused = run_single_gpu_sequential(jobs, LLAMA3_8B, cluster,
                                          strategy="fused")
        speedup = fused.tokens_per_second / torch.tokens_per_second
        # Figure 14, 8B single-GPU: 1.19-1.43x from the kernel alone.
        assert 1.05 < speedup < 1.5

    def test_l40s_slower_than_h100(self):
        jobs = jobs_for(samples=8)
        h = run_single_gpu_sequential(jobs, LLAMA3_8B,
                                      ClusterSpec(gpu=H100, num_gpus=1))
        l = run_single_gpu_sequential(jobs, LLAMA3_8B,
                                      ClusterSpec(gpu=L40S, num_gpus=1))
        assert l.tokens_per_second < h.tokens_per_second
