"""Tests for the 1F1B pipeline simulator."""

import pytest

from repro.distsim import PipelineMicrobatch, simulate_flushed, simulate_stream
from repro.errors import SimulationError

S = 4


def uniform(n, f=1.0, b=2.0, pairs=None, stages=S):
    return [
        PipelineMicrobatch(
            fwd_times=(f,) * stages,
            bwd_times=(b,) * stages,
            adapter_batches=frozenset(pairs[i]) if pairs else frozenset(),
        )
        for i in range(n)
    ]


class TestUniform1F1B:
    @pytest.mark.parametrize("m", [4, 8, 16, 64])
    def test_makespan_matches_closed_form(self, m):
        # Uniform per-stage times: T = (M + S - 1) * (f + b).
        result = simulate_stream(uniform(m), S)
        assert result.makespan == pytest.approx((m + S - 1) * 3.0)

    @pytest.mark.parametrize("m", [4, 8, 32])
    def test_bubble_ratio_matches_closed_form(self, m):
        result = simulate_stream(uniform(m), S)
        expected = (S - 1) * 3.0 / ((m + S - 1) * 3.0)
        assert result.bubble_ratio == pytest.approx(expected)

    def test_bubble_shrinks_with_more_microbatches(self):
        # Figure 5's PP trend: larger global batches -> fewer bubbles.
        bubbles = [simulate_stream(uniform(m), S).bubble_ratio
                   for m in (4, 8, 16, 32)]
        assert bubbles == sorted(bubbles, reverse=True)

    def test_single_stage_has_no_bubbles(self):
        result = simulate_stream(uniform(8, stages=1), 1)
        assert result.bubble_ratio == pytest.approx(0.0)
        assert result.makespan == pytest.approx(8 * 3.0)

    def test_empty_stream(self):
        result = simulate_stream([], S)
        assert result.makespan == 0.0

    def test_stage_count_mismatch_rejected(self):
        with pytest.raises(SimulationError):
            simulate_stream(uniform(4, stages=2), 4)


class TestVariableSizes:
    def test_slow_microbatch_stalls_pipeline(self):
        mbs = uniform(8)
        slow = PipelineMicrobatch(fwd_times=(10.0,) * S, bwd_times=(20.0,) * S)
        result_uniform = simulate_stream(mbs, S)
        result_skewed = simulate_stream(mbs[:4] + [slow] + mbs[4:7], S)
        # Same microbatch count; the skewed stream is slower and bubblier.
        assert result_skewed.makespan > result_uniform.makespan
        assert result_skewed.bubble_ratio > result_uniform.bubble_ratio

    def test_last_stage_imbalance_creates_bubbles(self):
        # A heavier last stage (LM head) idles the others -- the effect the
        # paper says caps LoRAFusion at ~11% bubbles.
        mbs = [
            PipelineMicrobatch(fwd_times=(1.0, 1.0, 1.0, 1.3),
                               bwd_times=(2.0, 2.0, 2.0, 2.6))
            for _ in range(32)
        ]
        result = simulate_stream(mbs, S)
        baseline = simulate_stream(uniform(32), S)
        assert result.bubble_ratio > baseline.bubble_ratio


class TestAdapterDependencies:
    def test_spaced_batches_do_not_stall(self):
        # Two adapters interleave in blocks of 4: gap between an adapter's
        # consecutive batches is >= S, so throughput matches uniform 1F1B.
        pairs = []
        for step in range(4):
            pairs.extend([[(0, step)]] * 4)
            pairs.extend([[(1, step)]] * 4)
        result = simulate_stream(uniform(32, pairs=pairs), S)
        free = simulate_stream(uniform(32), S)
        assert result.makespan == pytest.approx(free.makespan)

    def test_violating_stream_deadlocks(self):
        pairs = [[(0, i // 2)] for i in range(8)]  # gap 2 < S
        with pytest.raises(SimulationError, match="deadlock"):
            simulate_stream(uniform(8, pairs=pairs), S)

    def test_noop_slots_resolve_dependencies(self):
        # Insert zero-work no-ops to restore the gap: stream must complete.
        pairs = [[(0, 0)], [(0, 0)]]
        mbs = uniform(2, pairs=pairs)
        noop = PipelineMicrobatch(fwd_times=(0.0,) * S, bwd_times=(0.0,) * S)
        stream = mbs[:2] + [noop] * (S - 1) + uniform(2, pairs=[[(0, 1)]] * 2)
        result = simulate_stream(stream, S)
        assert result.makespan > 0


class TestFlushedExecution:
    def test_flush_slower_than_stream(self):
        batches = [uniform(4) for _ in range(4)]
        flushed = simulate_flushed(batches, S)
        streamed = simulate_stream([mb for b in batches for mb in b], S)
        assert flushed.makespan > streamed.makespan

    def test_flushed_bubble_matches_per_batch_ramp(self):
        # Four batches of 4 microbatches: every batch pays the full ramp.
        flushed = simulate_flushed([uniform(4) for _ in range(4)], S)
        per_batch = simulate_stream(uniform(4), S)
        assert flushed.bubble_ratio == pytest.approx(per_batch.bubble_ratio)
        assert flushed.makespan == pytest.approx(4 * per_batch.makespan)
