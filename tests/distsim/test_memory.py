"""Tests for the GPU memory model and its paper-anchored claims."""

import pytest

from repro.distsim.memory import (
    activation_bytes_per_token,
    estimate_memory,
    fits_on_gpu,
)
from repro.gpu import H100, L40S
from repro.models import LLAMA3_8B, LLAMA3_70B


class TestModelStates:
    def test_70b_lora_fits_four_h100_pipeline(self):
        # The paper's main configuration: 70B across 4 H100 stages, with
        # activation checkpointing (4 in-flight microbatches of saved
        # intermediates cannot fit otherwise).
        est = estimate_memory(LLAMA3_70B, H100, tokens_in_flight=4 * 8192,
                              num_stages=4, saving="checkpoint")
        assert fits_on_gpu(est, H100)

    def test_70b_pipeline_needs_checkpointing(self):
        est = estimate_memory(LLAMA3_70B, H100, tokens_in_flight=4 * 8192,
                              num_stages=4, saving="full")
        assert not fits_on_gpu(est, H100)

    def test_70b_does_not_fit_one_h100(self):
        est = estimate_memory(LLAMA3_70B, H100, tokens_in_flight=8192,
                              num_stages=1)
        assert not fits_on_gpu(est, H100)

    def test_8b_fits_one_h100(self):
        est = estimate_memory(LLAMA3_8B, H100, tokens_in_flight=8192)
        assert fits_on_gpu(est, H100)

    def test_8b_tighter_on_l40s(self):
        # Figure 15 note: 8B on one L40S constrains batch size.
        big = estimate_memory(LLAMA3_8B, L40S, tokens_in_flight=8 * 8192)
        small = estimate_memory(LLAMA3_8B, L40S, tokens_in_flight=4096)
        assert fits_on_gpu(small, L40S)
        assert big.total > small.total

    def test_adapter_states_are_marginal(self):
        with_adapters = estimate_memory(LLAMA3_70B, H100, 8192, num_stages=4,
                                        num_adapters=4, saving="checkpoint")
        without = estimate_memory(LLAMA3_70B, H100, 8192, num_stages=4,
                                  num_adapters=1, saving="checkpoint")
        # Four adapters add only a few percent -- the multi-LoRA enabler.
        assert (with_adapters.total - without.total) / without.total < 0.07


class TestActivations:
    def test_activation_bytes_scale_with_tokens(self):
        est1 = estimate_memory(LLAMA3_70B, H100, 4096, num_stages=4)
        est2 = estimate_memory(LLAMA3_70B, H100, 8192, num_stages=4)
        assert est2.activations == pytest.approx(2 * est1.activations)

    def test_per_token_bytes_grow_with_model(self):
        assert (activation_bytes_per_token(LLAMA3_70B)
                > activation_bytes_per_token(LLAMA3_8B))

    def test_fsdp_shard_reduces_weights(self):
        sharded = estimate_memory(LLAMA3_70B, H100, 2048, dp_shard=4)
        whole = estimate_memory(LLAMA3_70B, H100, 2048)
        assert sharded.weights < whole.weights / 2
