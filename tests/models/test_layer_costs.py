"""Tests for the per-layer/stage cost model."""

import pytest

from repro.gpu import H100, L40S
from repro.models import LLAMA3_8B, LLAMA3_70B, LayerCostModel, MicrobatchShape


@pytest.fixture
def cost():
    return LayerCostModel(LLAMA3_8B, H100, strategy="torch")


def shape(tokens, lengths=None):
    if lengths is None:
        lengths = [tokens]
    return MicrobatchShape.from_lengths(lengths)


class TestMicrobatchShape:
    def test_from_lengths(self):
        s = MicrobatchShape.from_lengths([100, 200], num_adapters=2)
        assert s.tokens == 300
        assert s.sum_sq_len == 100**2 + 200**2
        assert s.num_adapters == 2


class TestLayerTime:
    def test_forward_scales_roughly_linearly_in_tokens(self, cost):
        t1 = cost.layer_time(shape(2048), "forward")
        t2 = cost.layer_time(shape(4096, [2048, 2048]), "forward")
        assert t2 == pytest.approx(2 * t1, rel=0.2)

    def test_backward_costs_more_than_forward(self, cost):
        s = shape(4096)
        assert cost.layer_time(s, "backward") > cost.layer_time(s, "forward")

    def test_attention_quadratic_in_sample_length(self, cost):
        # Same token count, one long sample vs many short ones.
        packed = cost.layer_time(shape(8192, [512] * 16), "forward")
        single = cost.layer_time(shape(8192, [8192]), "forward")
        assert single > packed

    def test_fused_strategy_is_faster(self):
        torch_cost = LayerCostModel(LLAMA3_8B, H100, strategy="torch")
        fused_cost = LayerCostModel(LLAMA3_8B, H100, strategy="fused")
        s = shape(8192)
        for direction in ("forward", "backward"):
            assert fused_cost.layer_time(s, direction) < torch_cost.layer_time(
                s, direction
            )

    def test_layerwise_speedup_in_paper_band(self):
        # Figure 18: FusedLoRA layer-wise speedup averages ~1.21x (<=1.30).
        torch_cost = LayerCostModel(LLAMA3_8B, H100, strategy="torch")
        fused_cost = LayerCostModel(LLAMA3_8B, H100, strategy="fused")
        s = shape(8192, [512] * 16)
        speedup = (
            torch_cost.layer_time(s, "forward") + torch_cost.layer_time(s, "backward")
        ) / (
            fused_cost.layer_time(s, "forward") + fused_cost.layer_time(s, "backward")
        )
        assert 1.10 <= speedup <= 1.45

    def test_multi_fallback_for_single_adapter(self):
        multi = LayerCostModel(LLAMA3_8B, H100, strategy="fused_multi")
        fused = LayerCostModel(LLAMA3_8B, H100, strategy="fused")
        s = shape(4096)  # num_adapters == 1
        assert multi.layer_time(s, "forward") == pytest.approx(
            fused.layer_time(s, "forward")
        )

    def test_l40s_slower_than_h100(self):
        h = LayerCostModel(LLAMA3_8B, H100)
        l = LayerCostModel(LLAMA3_8B, L40S)
        s = shape(4096)
        assert l.layer_time(s, "forward") > h.layer_time(s, "forward")


class TestStageTime:
    def test_last_stage_pays_for_head(self, cost):
        s = shape(4096)
        plain = cost.stage_time(s, "forward", 8)
        with_head = cost.stage_time(s, "forward", 8, last_stage=True)
        assert with_head > plain

    def test_zero_tokens_is_free(self, cost):
        assert cost.stage_time(MicrobatchShape(0, 0.0), "forward", 8) == 0.0

    def test_bigger_model_costs_more(self):
        small = LayerCostModel(LLAMA3_8B, H100)
        large = LayerCostModel(LLAMA3_70B, H100)
        s = shape(4096)
        assert large.layer_time(s, "forward") > 2 * small.layer_time(s, "forward")

    def test_optimizer_step_is_cheap(self, cost):
        # Adapter-only AdamW: far below one layer's work.
        assert cost.optimizer_step_time() < cost.layer_time(shape(4096), "forward")
