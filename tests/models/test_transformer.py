"""Tests for the numeric transformer, including full gradient checks."""

import numpy as np
import pytest

from repro.core.lora import LoRAConfig
from repro.errors import KernelConfigError
from repro.models import TINY, PackedBatch, TinyLoRATransformer
from repro.models.transformer import softmax_cross_entropy


@pytest.fixture
def model():
    m = TinyLoRATransformer(TINY, np.random.default_rng(0))
    m.add_adapter(LoRAConfig(rank=2, alpha=1.0, dropout=0.0, adapter_id=0))
    m.add_adapter(LoRAConfig(rank=3, alpha=0.5, dropout=0.0, adapter_id=1))
    # Non-zero B so adapter gradients flow through both matrices.
    for aid in (0, 1):
        rng = np.random.default_rng(100 + aid)
        for w in m.adapters[aid].values():
            w.b[:] = rng.standard_normal(w.b.shape) * 0.05
    return m


def make_batch(rng, spec, weights=None):
    samples = [(aid, rng.integers(0, TINY.vocab_size, n)) for aid, n in spec]
    return PackedBatch.from_samples(samples, weights)


class TestPackedBatch:
    def test_from_samples(self):
        rng = np.random.default_rng(1)
        batch = make_batch(rng, [(0, 5), (1, 7)])
        assert batch.total_tokens == 12
        assert batch.lengths == [5, 7]
        assert batch.adapter_ids == [0, 1]
        assert [s.stop - s.start for s in batch.sample_slices()] == [5, 7]

    def test_empty_rejected(self):
        with pytest.raises(KernelConfigError):
            PackedBatch.from_samples([])

    def test_metadata_mismatch_rejected(self):
        with pytest.raises(KernelConfigError):
            PackedBatch(token_ids=np.zeros(4, dtype=int), lengths=[4],
                        adapter_ids=[0, 1], weights=[1.0])


class TestSoftmaxCrossEntropy:
    def test_uniform_logits_loss_is_log_vocab(self):
        logits = np.zeros((3, 10))
        targets = np.array([1, 2, 3])
        loss, _ = softmax_cross_entropy(logits, targets, np.ones(3) / 3)
        assert loss == pytest.approx(np.log(10))

    def test_gradient_sums_to_zero_per_row(self):
        rng = np.random.default_rng(2)
        logits = rng.standard_normal((4, 7))
        _, dlogits = softmax_cross_entropy(
            logits, np.array([0, 1, 2, 3]), np.ones(4)
        )
        np.testing.assert_allclose(dlogits.sum(axis=1), 0.0, atol=1e-12)


class TestForward:
    def test_logits_shape(self, model):
        rng = np.random.default_rng(3)
        batch = make_batch(rng, [(0, 6), (1, 4)])
        logits = model.forward(batch)
        assert logits.shape == (10, TINY.vocab_size)

    def test_unknown_adapter_rejected(self, model):
        rng = np.random.default_rng(4)
        batch = make_batch(rng, [(9, 4)])
        with pytest.raises(KernelConfigError, match="unknown adapter"):
            model.forward(batch)

    def test_samples_are_independent(self, model):
        # Block-diagonal attention: sample 0's logits must not change when
        # sample 1 changes.
        rng = np.random.default_rng(5)
        tokens_a = rng.integers(0, TINY.vocab_size, 6)
        tokens_b1 = rng.integers(0, TINY.vocab_size, 5)
        tokens_b2 = rng.integers(0, TINY.vocab_size, 8)
        l1 = model.forward(PackedBatch.from_samples([(0, tokens_a), (1, tokens_b1)]))
        l2 = model.forward(PackedBatch.from_samples([(0, tokens_a), (1, tokens_b2)]))
        np.testing.assert_allclose(l1[:6], l2[:6], atol=1e-12)

    def test_sample_order_does_not_change_per_sample_logits(self, model):
        rng = np.random.default_rng(6)
        ta = rng.integers(0, TINY.vocab_size, 6)
        tb = rng.integers(0, TINY.vocab_size, 4)
        l_ab = model.forward(PackedBatch.from_samples([(0, ta), (1, tb)]))
        l_ba = model.forward(PackedBatch.from_samples([(1, tb), (0, ta)]))
        np.testing.assert_allclose(l_ab[:6], l_ba[4:], atol=1e-12)
        np.testing.assert_allclose(l_ab[6:], l_ba[:4], atol=1e-12)

    def test_fresh_adapter_is_identity(self):
        # B = 0 at init: logits equal for any two fresh adapters.
        model = TinyLoRATransformer(TINY, np.random.default_rng(0))
        model.add_adapter(LoRAConfig(rank=2, adapter_id=0, dropout=0.0))
        model.add_adapter(LoRAConfig(rank=5, adapter_id=1, dropout=0.0))
        rng = np.random.default_rng(7)
        tokens = rng.integers(0, TINY.vocab_size, 6)
        l0 = model.forward(PackedBatch.from_samples([(0, tokens)]))
        l1 = model.forward(PackedBatch.from_samples([(1, tokens)]))
        np.testing.assert_allclose(l0, l1, atol=1e-12)


class TestBackward:
    def test_backward_without_forward_rejected(self, model):
        with pytest.raises(KernelConfigError):
            model.backward(np.zeros((4, TINY.vocab_size)))

    def test_gradcheck_adapter_params(self, model):
        """Full-model numeric gradient check on sampled adapter entries."""
        rng = np.random.default_rng(8)
        batch = make_batch(rng, [(0, 7), (1, 5)], weights=[0.2, 0.3])
        _, _, grads = model.loss_and_grads(batch)

        eps = 1e-6
        checked = 0
        for aid, layer, proj, which in [
            (0, 0, "q_proj", "a"),
            (0, 1, "o_proj", "b"),
            (1, 0, "up_proj", "a"),
            (1, 1, "down_proj", "b"),
            (0, 0, "v_proj", "b"),
            (1, 1, "k_proj", "a"),
        ]:
            w = getattr(model.adapters[aid][(layer, proj)], which)
            i, j = w.shape[0] // 2, w.shape[1] // 2
            orig = w[i, j]
            w[i, j] = orig + eps
            lp, _, _ = model.loss_and_grads(batch)
            w[i, j] = orig - eps
            lm, _, _ = model.loss_and_grads(batch)
            w[i, j] = orig
            numeric = (lp - lm) / (2 * eps)
            analytic = grads[aid][(layer, proj)][which][i, j]
            assert numeric == pytest.approx(analytic, abs=1e-7), (
                aid, layer, proj, which
            )
            checked += 1
        assert checked == 6

    def test_only_present_adapters_get_nonzero_grads(self, model):
        rng = np.random.default_rng(9)
        batch = make_batch(rng, [(0, 6)])
        _, _, grads = model.loss_and_grads(batch)
        zero = max(
            np.abs(g["a"]).max() + np.abs(g["b"]).max()
            for g in grads[1].values()
        )
        nonzero = max(np.abs(g["a"]).max() for g in grads[0].values())
        assert zero == 0.0
        assert nonzero > 0.0

    def test_loss_weights_scale_gradients(self, model):
        rng = np.random.default_rng(10)
        tokens = rng.integers(0, TINY.vocab_size, 6)
        _, _, g1 = model.loss_and_grads(
            PackedBatch.from_samples([(0, tokens)], weights=[1.0])
        )
        _, _, g2 = model.loss_and_grads(
            PackedBatch.from_samples([(0, tokens)], weights=[2.0])
        )
        key = (0, "q_proj")
        np.testing.assert_allclose(g2[0][key]["a"], 2 * g1[0][key]["a"], atol=1e-12)


class TestValidation:
    def test_gqa_not_supported_numerically(self):
        from repro.models import LLAMA3_8B

        with pytest.raises(KernelConfigError, match="MHA"):
            TinyLoRATransformer(LLAMA3_8B)

    def test_duplicate_adapter_rejected(self, model):
        with pytest.raises(KernelConfigError):
            model.add_adapter(LoRAConfig(rank=2, adapter_id=0))
