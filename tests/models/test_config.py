"""Tests for model architecture configs and the memory formula."""

import pytest

from repro.models import LLAMA3_8B, LLAMA3_70B, QWEN25_32B, TINY, get_model, list_models


class TestRegistry:
    def test_paper_models_present(self):
        assert set(list_models()) >= {"llama3-8b", "qwen25-32b", "llama3-70b"}

    def test_lookup(self):
        assert get_model("llama3-70b") is LLAMA3_70B

    def test_unknown_model_raises(self):
        with pytest.raises(KeyError):
            get_model("gpt-5")


class TestShapes:
    def test_head_dims(self):
        assert LLAMA3_8B.head_dim == 128
        assert LLAMA3_70B.head_dim == 128
        assert QWEN25_32B.head_dim == 128

    def test_gqa_kv_dim(self):
        # 8 KV heads x 128 head dim on all three models.
        assert LLAMA3_8B.kv_dim == 1024
        assert LLAMA3_70B.kv_dim == 1024

    def test_seven_lora_target_linears(self):
        shapes = LLAMA3_8B.linear_shapes()
        assert set(shapes) == {
            "q_proj", "k_proj", "v_proj", "o_proj",
            "gate_proj", "up_proj", "down_proj",
        }
        assert shapes["q_proj"] == (4096, 4096)
        assert shapes["down_proj"] == (14336, 4096)

    def test_param_counts_match_model_names(self):
        # Within ~15% of the nominal parameter counts.
        assert LLAMA3_8B.param_count() == pytest.approx(8e9, rel=0.15)
        assert QWEN25_32B.param_count() == pytest.approx(32.5e9, rel=0.15)
        assert LLAMA3_70B.param_count() == pytest.approx(70e9, rel=0.15)


class TestMemoryFormula:
    def test_frozen_weights_dominate_lora_state(self):
        # Section 2.1: LoRA rank 16 adds ~0.3-0.4% parameters; even with
        # 16 bytes/param of optimizer state the total stays close to the
        # frozen footprint.
        frozen = LLAMA3_70B.model_state_bytes(lora_rank=0)
        with_lora = LLAMA3_70B.model_state_bytes(lora_rank=16)
        assert with_lora / frozen < 1.06

    def test_llama70b_lora_memory_matches_paper(self):
        # "fine-tuning LLaMa-3.1-70B using LoRA ... reducing GPU memory
        # usage to 142GB": weights plus rank-16 adapter states.
        total_gb = LLAMA3_70B.model_state_bytes(lora_rank=16) / 1e9
        assert 130 <= total_gb <= 155

    def test_full_finetune_is_8x_lora(self):
        # 16 bytes/param full fine-tuning vs 2 bytes/param frozen: the
        # "decreasing memory demands by nearly 8x" claim.
        full = 16 * LLAMA3_70B.param_count()
        lora = LLAMA3_70B.model_state_bytes(lora_rank=16)
        assert 7.0 <= full / lora <= 8.1
