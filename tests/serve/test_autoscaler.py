"""Tests for elastic autoscaling: policy logic, kernel-native scale
events, spot reclamation, and interval-weighted fleet accounting."""

import numpy as np
import pytest

from repro.data.dataset import FinetuneDataset, Sample
from repro.errors import ScheduleError
from repro.gpu import H100
from repro.gpu.specs import get_gpu
from repro.models.config import LLAMA3_8B
from repro.models.layer_costs import LayerCostModel
from repro.scheduler import AdapterJob, SchedulerConfig
from repro.serve import (
    CapacityPool,
    CostAwareRouting,
    CostEstimator,
    FleetAutoscaler,
    OrchestratorConfig,
    ReclamationNotice,
    ReplicaSet,
    ReplicaSetConfig,
    SlotAdmission,
    StreamingSimExecutor,
    poisson_workload,
)

NUM_STAGES = 2
COST = LayerCostModel(LLAMA3_8B, H100, strategy="fused_multi")
SCHED = SchedulerConfig(capacity=8192, num_stages=NUM_STAGES, use_milp=False)

ON_DEMAND = CapacityPool("a100", "a100-sxm", hourly_rate=4.0, limit=4)
SPOT = CapacityPool(
    "l40s-spot", "l40s", hourly_rate=1.0, limit=4, speed_factor=2.0, spot=True
)


def make_scaler(**overrides):
    kwargs = dict(
        pools=(ON_DEMAND, SPOT),
        budget_per_hour=20.0,
        initial_pools=("a100",),
        scale_up_backlog=0.4,
        scale_down_backlog=0.05,
        provision_delay=0.1,
        cooldown=0.1,
    )
    kwargs.update(overrides)
    return FleetAutoscaler(**kwargs)


def make_jobs(count, seed=17):
    rng = np.random.default_rng(seed)
    lengths = rng.integers(64, 512, size=16)
    return [
        AdapterJob(
            a,
            FinetuneDataset(a, [Sample(a, 0, int(lengths[a % 16]))]),
            1,
        )
        for a in range(count)
    ]


def elastic_set(scaler, initial=1):
    estimator = CostEstimator.for_scheduler(COST, SCHED)
    config = ReplicaSetConfig(
        orchestrator=OrchestratorConfig(
            scheduler=SCHED,
            window_batches=1,
            admission=SlotAdmission(4),
            estimator=estimator,
        ),
        routing=CostAwareRouting(estimator),
        migration_time_threshold=30.0,
        autoscaler=scaler,
        executor_factory=lambda pool: StreamingSimExecutor(
            LayerCostModel(
                LLAMA3_8B, get_gpu(pool.gpu), strategy="fused_multi"
            ),
            NUM_STAGES,
        ),
    )
    executors = [StreamingSimExecutor(COST, NUM_STAGES) for _ in range(initial)]
    return ReplicaSet(executors, config)


def fingerprint(result):
    return {
        aid: (r.arrival_time, r.admit_time, r.first_scheduled_time,
              r.finish_time, r.replica, r.migrations, r.num_batches)
        for aid, r in result.records.items()
    }


class TestCapacityPool:
    def test_unknown_gpu_key_fails_fast(self):
        with pytest.raises(KeyError):
            CapacityPool("x", "tpu-v5", hourly_rate=1.0, limit=1)

    def test_validation(self):
        with pytest.raises(ScheduleError):
            CapacityPool("", "l40s", hourly_rate=1.0, limit=1)
        with pytest.raises(ScheduleError):
            CapacityPool("x", "l40s", hourly_rate=-1.0, limit=1)
        with pytest.raises(ScheduleError):
            CapacityPool("x", "l40s", hourly_rate=1.0, limit=0)
        with pytest.raises(ScheduleError):
            CapacityPool("x", "l40s", hourly_rate=1.0, limit=1,
                         speed_factor=0.0)

    def test_notice_validation(self):
        with pytest.raises(ScheduleError):
            ReclamationNotice(time=-1.0, count=1, deadline=0.5)
        with pytest.raises(ScheduleError):
            ReclamationNotice(time=0.0, count=0, deadline=0.5)
        with pytest.raises(ScheduleError):
            ReclamationNotice(time=0.0, count=1, deadline=-0.5)


class TestAutoscalerPolicy:
    def test_config_validation(self):
        with pytest.raises(ScheduleError):
            make_scaler(pools=())
        with pytest.raises(ScheduleError):
            make_scaler(pools=(ON_DEMAND, ON_DEMAND))
        with pytest.raises(ScheduleError):
            make_scaler(budget_per_hour=0.0)
        with pytest.raises(ScheduleError):
            make_scaler(scale_up_backlog=1.0, scale_down_backlog=1.0)
        with pytest.raises(ScheduleError):
            make_scaler(initial_pools=("h100-reserved",))
        with pytest.raises(ScheduleError):
            make_scaler(min_replicas=0)

    def test_attach_bills_budget_and_enforces_limits(self):
        scaler = make_scaler()
        pool = scaler.attach(0, "a100")
        assert pool is ON_DEMAND
        assert scaler.committed_rate == 4.0
        for index in range(1, 4):
            scaler.attach(index, "a100")
        with pytest.raises(ScheduleError, match="limit"):
            scaler.attach(4, "a100")

    def test_attach_refuses_over_budget_fleet(self):
        scaler = make_scaler(budget_per_hour=5.0)
        scaler.attach(0, "a100")
        with pytest.raises(ScheduleError, match="budget"):
            scaler.attach(1, "a100")

    def test_scale_up_buys_cheapest_available_pool(self):
        scaler = make_scaler()
        scaler.attach(0, "a100")
        decision = scaler.plan(0.0, [(0, 10.0)], pressure=0)
        assert decision == ("join", SPOT)  # $1/h beats $4/h
        assert scaler.committed_rate == 5.0  # billed at the decision

    def test_scale_up_respects_budget_ceiling(self):
        scaler = make_scaler(budget_per_hour=4.5)
        scaler.attach(0, "a100")
        # Only $0.50/h headroom: even the $1/h spot pool is refused.
        assert scaler.plan(0.0, [(0, 10.0)], pressure=0) is None

    def test_deadline_pressure_forces_scale_up(self):
        scaler = make_scaler()
        scaler.attach(0, "a100")
        # Backlog well below the up threshold, but a queued job is
        # already priced as missed.
        assert scaler.plan(0.0, [(0, 0.0)], pressure=1) == ("join", SPOT)

    def test_hysteresis_band_holds_fleet_size(self):
        scaler = make_scaler()
        scaler.attach(0, "a100")
        scaler.attach(1, "a100")
        per = (scaler.scale_up_backlog + scaler.scale_down_backlog) / 2
        assert scaler.plan(0.0, [(0, per), (1, per)], pressure=0) is None

    def test_cooldown_spaces_actions(self):
        scaler = make_scaler(cooldown=10.0)
        scaler.attach(0, "a100")
        assert scaler.plan(0.0, [(0, 10.0)], pressure=0) is not None
        assert not scaler.ready(5.0)
        assert scaler.plan(5.0, [(0, 10.0)], pressure=0) is None
        assert scaler.plan(10.0, [(0, 10.0)], pressure=0) is not None

    def test_scale_down_retires_emptiest_then_priciest_then_youngest(self):
        scaler = make_scaler(cooldown=0.0)
        scaler.attach(0, "a100")
        scaler.attach(1, "l40s-spot")
        scaler.attach(2, "l40s-spot")
        # Distinct backlogs: the emptiest replica goes.
        assert scaler.plan(0.0, [(0, 0.0), (1, 0.01), (2, 0.02)],
                           pressure=0) == ("retire", 0)
        # Equal backlogs: the most expensive pool goes first.
        assert scaler.plan(0.0, [(0, 0.0), (1, 0.0), (2, 0.0)],
                           pressure=0) == ("retire", 0)
        # Same pool and backlog: the youngest (highest index) goes.
        assert scaler.plan(0.0, [(1, 0.0), (2, 0.0)],
                           pressure=0) == ("retire", 2)

    def test_scale_down_respects_min_replicas(self):
        scaler = make_scaler(min_replicas=2, cooldown=0.0)
        scaler.attach(0, "a100")
        scaler.attach(1, "a100")
        assert scaler.plan(0.0, [(0, 0.0), (1, 0.0)], pressure=0) is None

    def test_retirement_frees_budget_for_a_new_join(self):
        scaler = make_scaler(budget_per_hour=5.0, cooldown=0.0)
        scaler.attach(0, "a100")
        scaler.attach(1, "l40s-spot")
        assert scaler.plan(0.0, [(0, 10.0), (1, 10.0)], pressure=0) is None
        scaler.on_retired(1)
        assert scaler.committed_rate == 4.0
        assert scaler.plan(0.0, [(0, 10.0)], pressure=0) == ("join", SPOT)

    def test_reclaim_takes_only_spot_newest_first_never_all(self):
        scaler = make_scaler()
        scaler.attach(0, "a100")
        scaler.attach(1, "l40s-spot")
        scaler.attach(2, "l40s-spot")
        assert scaler.pick_reclaim_victims(1, [0, 1, 2]) == [2]
        assert scaler.pick_reclaim_victims(5, [0, 1, 2]) == [2, 1]
        # The sole routable replica survives any notice.
        assert scaler.pick_reclaim_victims(1, [1]) == []
        # On-demand capacity is never reclaimed.
        assert scaler.pick_reclaim_victims(2, [0]) == []


class TestElasticConfigValidation:
    def test_autoscaler_requires_event_kernel(self):
        estimator = CostEstimator.for_scheduler(COST, SCHED)
        with pytest.raises(ScheduleError, match="event"):
            ReplicaSetConfig(
                orchestrator=OrchestratorConfig(
                    scheduler=SCHED, estimator=estimator
                ),
                kernel="lockstep",
                autoscaler=make_scaler(),
                executor_factory=lambda pool: StreamingSimExecutor(
                    COST, NUM_STAGES
                ),
            )

    def test_autoscaler_requires_estimator(self):
        with pytest.raises(ScheduleError, match="estimator"):
            ReplicaSetConfig(
                orchestrator=OrchestratorConfig(scheduler=SCHED),
                autoscaler=make_scaler(),
                executor_factory=lambda pool: StreamingSimExecutor(
                    COST, NUM_STAGES
                ),
            )

    def test_autoscaler_requires_executor_factory(self):
        estimator = CostEstimator.for_scheduler(COST, SCHED)
        with pytest.raises(ScheduleError, match="factory"):
            ReplicaSetConfig(
                orchestrator=OrchestratorConfig(
                    scheduler=SCHED, estimator=estimator
                ),
                autoscaler=make_scaler(),
            )

    def test_initial_pools_must_match_executor_count(self):
        with pytest.raises(ScheduleError, match="initial pool"):
            elastic_set(make_scaler(initial_pools=("a100", "a100")), initial=1)


class TestElasticFleet:
    def run_flash_crowd(self, scaler, jobs=160, rate=120.0, seed=7):
        workload = poisson_workload(make_jobs(jobs, seed + 10), rate=rate,
                                    rng=seed)
        return elastic_set(scaler).run(workload)

    def test_flash_crowd_scales_up_and_completes_every_job(self):
        result = self.run_flash_crowd(make_scaler())
        assert result.joins >= 1
        assert "REPLICA_JOIN" in result.events_processed
        for record in result.records.values():
            assert record.finish_time is not None

    def test_scale_events_rerun_byte_identical(self):
        first = self.run_flash_crowd(make_scaler())
        second = self.run_flash_crowd(make_scaler())
        assert fingerprint(first) == fingerprint(second)
        assert first.makespan == second.makespan
        assert first.events_processed == second.events_processed

    def test_quiet_tail_scales_back_down(self):
        result = self.run_flash_crowd(make_scaler())
        assert result.retires >= 1
        # Retired replicas stop billing: their intervals end before the
        # fleet's.
        ends = [end for _, end in result.replica_intervals]
        assert min(ends) < max(ends)

    def test_join_lands_after_provision_delay(self):
        scaler = make_scaler(provision_delay=0.3)
        result = self.run_flash_crowd(scaler)
        assert result.joins >= 1
        # A joined replica's active interval starts at its landing, and
        # capacity is never instant.
        late_starts = [start for start, _ in result.replica_intervals
                       if start > 0.0]
        assert late_starts and min(late_starts) >= 0.3

    def test_gpu_seconds_and_dollars_match_intervals(self):
        result = self.run_flash_crowd(make_scaler())
        spans = [end - start for start, end in result.replica_intervals]
        assert result.gpu_seconds == pytest.approx(sum(spans))
        assert result.dollars_spent <= sum(spans) * 4.0 / 3600.0 + 1e-12
        assert result.dollars_spent > 0.0

    def test_utilization_is_interval_weighted(self):
        result = self.run_flash_crowd(make_scaler())
        busy = sum(r.utilization * r.makespan for r in result.replicas)
        spans = [end - start for start, end in result.replica_intervals]
        assert result.utilization() == pytest.approx(busy / sum(spans))

    def test_fixed_fleet_reports_no_intervals(self):
        config = ReplicaSetConfig(
            orchestrator=OrchestratorConfig(
                scheduler=SCHED, window_batches=1, admission=SlotAdmission(4)
            ),
        )
        executors = [StreamingSimExecutor(COST, NUM_STAGES) for _ in range(2)]
        workload = poisson_workload(make_jobs(8), rate=2.0, rng=5)
        result = ReplicaSet(executors, config).run(workload)
        assert result.replica_intervals == []
        assert result.gpu_seconds == 0.0
        assert result.dollars_spent == 0.0
        assert result.joins == result.retires == result.reclaims == 0


class TestSpotReclamation:
    def run_reclaim(self, deadline=0.2, time=1.0, count=2, seed=7,
                    jobs=200, rate=150.0):
        scaler = make_scaler(
            reclamations=(ReclamationNotice(time=time, count=count,
                                            deadline=deadline),),
        )
        workload = poisson_workload(make_jobs(jobs, seed + 10), rate=rate,
                                    rng=seed)
        return elastic_set(scaler).run(workload)

    def test_mass_reclaim_loses_zero_jobs(self):
        result = self.run_reclaim()
        assert result.reclaims >= 1
        for record in result.records.values():
            assert record.finish_time is not None

    def test_reclaim_latency_bounded_by_grace_window(self):
        result = self.run_reclaim(deadline=0.2)
        assert result.reclaim_latencies
        for latency in result.reclaim_latencies:
            assert 0.0 <= latency <= 0.2 + 1e-9
        assert result.mean_reclaim_latency() == pytest.approx(
            sum(result.reclaim_latencies) / len(result.reclaim_latencies)
        )

    def test_zero_grace_forces_evacuation_at_the_notice(self):
        result = self.run_reclaim(deadline=0.0)
        assert result.reclaims >= 1
        # No grace: anything resident is force-drained immediately, and
        # still nothing is lost.
        for record in result.records.values():
            assert record.finish_time is not None

    def test_reclaim_rerun_byte_identical(self):
        first = self.run_reclaim()
        second = self.run_reclaim()
        assert fingerprint(first) == fingerprint(second)
        assert first.reclaim_latencies == second.reclaim_latencies
        assert first.forced_evacuations == second.forced_evacuations

    def test_evacuated_jobs_keep_their_migration_counts(self):
        result = self.run_reclaim()
        moved = sum(r.migrations for r in result.records.values())
        assert moved + result.reroutes >= result.reclaims


class TestElasticPackingIdentities:
    """The packing counters' fleet aggregation identities must survive
    elasticity: replicas that join mid-run (``REPLICA_JOIN``) and retire
    early (``REPLICA_RETIRE``) contribute exactly their own streams --
    no double counting at scale events, no phantom slots from retired
    pipelines."""

    def run_elastic(self):
        workload = poisson_workload(make_jobs(160, 17), rate=120.0, rng=7)
        result = elastic_set(make_scaler()).run(workload)
        # The run must actually exercise both scale directions, or the
        # identities below would be the fixed-fleet ones in disguise.
        assert result.joins >= 1 and result.retires >= 1
        assert "REPLICA_JOIN" in result.events_processed
        assert "REPLICA_RETIRE" in result.events_processed
        return result

    def test_padding_waste_is_the_merged_stream_identity(self):
        result = self.run_elastic()
        tokens = sum(r.total_tokens for r in result.replicas)
        padded = sum(r.total_padded_tokens for r in result.replicas)
        assert padded > 0
        assert result.total_padded_tokens == padded
        assert result.padding_waste() == pytest.approx(1.0 - tokens / padded)

    def test_bubble_rate_is_the_merged_stream_identity(self):
        result = self.run_elastic()
        noops = sum(r.noop_microbatches for r in result.replicas)
        slots = sum(r.total_microbatches for r in result.replicas)
        assert slots > 0
        assert result.bubble_rate() == pytest.approx(noops / slots)

    def test_pack_efficiency_is_the_budget_weighted_identity(self):
        result = self.run_elastic()
        budget = sum(
            r.capacity * (r.total_microbatches - r.noop_microbatches)
            for r in result.replicas
        )
        tokens = sum(r.total_tokens for r in result.replicas)
        assert budget > 0
        assert result.pack_efficiency() == pytest.approx(tokens / budget)
        # With one uniform capacity the fleet number is also the merged
        # per-replica mean, weighted by each replica's real slots.
        weights = [
            r.total_microbatches - r.noop_microbatches
            for r in result.replicas
        ]
        merged = sum(
            r.pack_efficiency() * w
            for r, w in zip(result.replicas, weights)
        ) / sum(weights)
        assert result.pack_efficiency() == pytest.approx(merged)
