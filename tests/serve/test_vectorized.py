"""Property tests: every vectorized hot path equals its scalar twin.

The event kernel's speed comes from numpy-batched pricing and ranking
(:meth:`CostEstimator.job_seconds_batch` /
:meth:`~CostEstimator.placement_seconds_batch`,
:func:`~repro.serve.ordering.policy_keys`, the array scoring inside
:class:`~repro.serve.CostAwareRouting`).  Correctness of the whole
bit-identical-to-lockstep story rests on these being **exactly** equal
to the scalar paths -- same IEEE-754 ops in the same order -- so each
test asserts ``==``, never ``approx``.
"""

import math

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data import synthetic_dataset
from repro.gpu import H100
from repro.models.config import LLAMA3_8B
from repro.models.layer_costs import LayerCostModel
from repro.scheduler import AdapterJob, SchedulerConfig
from repro.serve import (
    CalibrationTracker,
    CostAwareRouting,
    CostEstimator,
    DeadlineOrdering,
    FCFSOrdering,
    FleetArrays,
    JobView,
    PriorityOrdering,
    ReplicaView,
    SRPTOrdering,
    ServeJob,
    policy_keys,
)

COST = LayerCostModel(LLAMA3_8B, H100, strategy="fused_multi")
DATASETS = ["xsum", "cnn_dailymail", "wikisum", "mixed"]
SCHEDULER = SchedulerConfig(capacity=8192, num_stages=2, use_milp=False)


def make_estimator(calibrated):
    estimator = CostEstimator.for_scheduler(COST, SCHEDULER)
    if calibrated:
        estimator.calibration = CalibrationTracker()
        # Seed distinguishable per-tenant and per-replica factors.
        estimator.calibration.observe(10.0, 13.0, tenants=[0, 2], replica=0)
        estimator.calibration.observe(10.0, 8.0, tenants=[1], replica=1)
    return estimator


def make_job(adapter_id, samples=8, gbs=4):
    return AdapterJob(
        adapter_id,
        synthetic_dataset(adapter_id, DATASETS[adapter_id % 4], samples,
                          seed=3),
        gbs,
    )


finite = st.floats(min_value=-1e6, max_value=1e6, allow_nan=False)
rates = st.sampled_from([0.0, 0.25, 1.5])

job_views = st.builds(
    JobView,
    adapter_id=st.integers(min_value=0, max_value=99),
    arrival_time=st.floats(min_value=0.0, max_value=1e6, allow_nan=False),
    priority=st.integers(min_value=-5, max_value=5),
    deadline=st.one_of(st.none(), finite),
    remaining_batches=st.integers(min_value=0, max_value=1000),
    admitted=st.booleans(),
    remaining_seconds=st.one_of(
        st.none(), st.floats(min_value=0.0, max_value=1e6, allow_nan=False)
    ),
)


class TestPolicyKeysEqualScalar:
    @given(views=st.lists(job_views, max_size=20), now=finite, rate=rates)
    @settings(max_examples=60, deadline=None)
    def test_all_shipped_policies(self, views, now, rate):
        policies = [
            FCFSOrdering(),
            SRPTOrdering(aging_rate=rate),
            PriorityOrdering(aging_rate=rate),
            DeadlineOrdering(aging_rate=rate),
        ]
        for policy in policies:
            batch = policy_keys(policy, views, now)
            scalar = [policy.key(view, now) for view in views]
            assert batch == scalar
            # Exactness, not just tuple equality through -0.0 == 0.0:
            # the lead term must be the same float down to its sign bit.
            for b, s in zip(batch, scalar):
                assert math.copysign(1.0, b[0]) == math.copysign(
                    1.0, float(s[0])
                )

    def test_unbatched_policy_falls_back_to_scalar(self):
        class Odd:
            preemptive = False

            def key(self, job, now):
                return (-job.adapter_id,)

        views = [
            JobView(adapter_id=a, arrival_time=0.0, priority=0, deadline=None,
                    remaining_batches=1, admitted=False)
            for a in range(3)
        ]
        assert policy_keys(Odd(), views, 5.0) == [(0,), (-1,), (-2,)]

    def test_empty_candidate_set(self):
        assert policy_keys(SRPTOrdering(), [], 0.0) == []


class TestBatchedPricingEqualsScalar:
    @given(calibrated=st.booleans(),
           num_adapters=st.integers(min_value=1, max_value=4),
           replica=st.one_of(st.none(), st.integers(0, 2)),
           remaining=st.lists(
               st.one_of(st.none(), st.integers(min_value=0, max_value=9)),
               min_size=6, max_size=6,
           ))
    @settings(max_examples=30, deadline=None)
    def test_job_seconds_batch(self, calibrated, num_adapters, replica,
                               remaining):
        estimator = make_estimator(calibrated)
        jobs = [make_job(a, samples=4 + 2 * a, gbs=2 + 2 * (a % 2))
                for a in range(6)]
        batch = estimator.job_seconds_batch(
            jobs, remaining, num_adapters=num_adapters, replica=replica
        )
        for i, job in enumerate(jobs):
            scalar = estimator.job_seconds(
                job, remaining[i], num_adapters=num_adapters, replica=replica
            )
            assert batch[i] == scalar

    @given(calibrated=st.booleans(),
           num_active=st.lists(st.integers(min_value=0, max_value=5),
                               min_size=1, max_size=12))
    @settings(max_examples=30, deadline=None)
    def test_placement_seconds_batch(self, calibrated, num_active):
        estimator = make_estimator(calibrated)
        job = make_job(0)
        replicas = [i % 3 for i in range(len(num_active))]
        batch = estimator.placement_seconds_batch(job, num_active, replicas)
        for i, active in enumerate(num_active):
            scalar = estimator.placement_seconds(
                job, active, replica=replicas[i]
            )
            assert batch[i] == scalar

    def test_replicas_argument_defaults_to_uncorrected(self):
        estimator = make_estimator(calibrated=True)
        job = make_job(5)  # untracked tenant: replica factor would apply
        batch = estimator.placement_seconds_batch(job, [0, 1, 2])
        for i in range(3):
            assert batch[i] == estimator.placement_seconds(job, i,
                                                           replica=None)

    def test_zero_batch_jobs_price_zero(self):
        estimator = make_estimator(calibrated=True)
        jobs = [make_job(0), make_job(1)]
        batch = estimator.job_seconds_batch(jobs, [0, 0])
        assert batch.tolist() == [0.0, 0.0]


class TestRouterChoiceEqualsScalar:
    @staticmethod
    def scalar_choose(job, replicas, estimator):
        """The pre-vectorization scoring rule, verbatim."""

        def score(view):
            backlog = view.expected_remaining_time or 0.0
            marginal = (
                estimator.placement_seconds(job.job, view.num_active,
                                            replica=view.index)
                if estimator is not None
                else 0.0
            )
            return (backlog + marginal, backlog, view.index)

        return min(replicas, key=score).index

    @given(calibrated=st.booleans(),
           with_estimator=st.booleans(),
           loads=st.lists(
               st.tuples(
                   st.floats(min_value=0.0, max_value=1e4, allow_nan=False),
                   st.integers(min_value=0, max_value=5),
               ),
               min_size=1, max_size=16,
           ))
    @settings(max_examples=40, deadline=None)
    def test_choose_matches_scalar_rule(self, calibrated, with_estimator,
                                        loads):
        estimator = make_estimator(calibrated) if with_estimator else None
        job = ServeJob(job=make_job(1), arrival_time=0.0)
        views = [
            ReplicaView(index=i, clock=0.0, num_active=active,
                        num_pending=0, num_parked=0,
                        outstanding_batches=active, slots_free=1,
                        expected_remaining_time=backlog)
            for i, (backlog, active) in enumerate(loads)
        ]
        policy = CostAwareRouting(estimator=estimator)
        assert policy.choose(job, views) == self.scalar_choose(
            job, views, estimator
        )

    def test_unpriced_view_falls_back_to_batch_counts(self):
        job = ServeJob(job=make_job(1), arrival_time=0.0)
        views = [
            ReplicaView(index=0, clock=0.0, num_active=1, num_pending=0,
                        num_parked=0, outstanding_batches=5, slots_free=1,
                        expected_remaining_time=None),
            ReplicaView(index=1, clock=0.0, num_active=1, num_pending=0,
                        num_parked=0, outstanding_batches=2, slots_free=1,
                        expected_remaining_time=1.0),
        ]
        assert CostAwareRouting().choose(job, views) == 1

    @given(calibrated=st.booleans(),
           with_estimator=st.booleans(),
           adapter_id=st.sampled_from([1, 5]),  # tracked / untracked tenant
           hole=st.one_of(st.none(), st.integers(min_value=0, max_value=15)),
           loads=st.lists(
               st.tuples(
                   st.floats(min_value=0.0, max_value=1e4, allow_nan=False),
                   st.integers(min_value=0, max_value=5),
               ),
               min_size=1, max_size=16,
           ))
    @settings(max_examples=40, deadline=None)
    def test_choose_arrays_matches_choose(self, calibrated, with_estimator,
                                          adapter_id, hole, loads):
        # ``hole`` punches one unpriced view into the fleet, exercising
        # the missing-row fallback; the untracked tenant routes the
        # pricing through the per-replica correction gather, with the
        # replica ids arriving as an int64 ndarray.
        estimator = make_estimator(calibrated) if with_estimator else None
        job = ServeJob(job=make_job(adapter_id), arrival_time=0.0)
        views = [
            ReplicaView(index=i, clock=0.0, num_active=active,
                        num_pending=0, num_parked=0,
                        outstanding_batches=active, slots_free=1,
                        expected_remaining_time=(
                            None if hole is not None and hole == i
                            else backlog
                        ))
            for i, (backlog, active) in enumerate(loads)
        ]
        arrays = FleetArrays.for_fleet(len(views))
        for i, view in enumerate(views):
            arrays.refill(i, view)
        policy = CostAwareRouting(estimator=estimator)
        assert policy.choose_arrays(job, views, arrays) == policy.choose(
            job, views
        )
