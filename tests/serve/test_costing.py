"""Tests for the cost estimator and the cost-driven control plane.

Covers the estimator primitives, the hypothesis calibration property
(predicted wave time within the documented tolerance of the streaming
simulator's observed time across random tenant mixes -- and within the
*tightened* tolerance once feedback correction is active), the
feedback-correction tracker, and the cost-aware router's
no-dominated-choice guarantee.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data import synthetic_dataset
from repro.data.dataset import FinetuneDataset, Sample
from repro.errors import ScheduleError
from repro.gpu import H100
from repro.models.config import LLAMA3_8B
from repro.models.layer_costs import LayerCostModel, MicrobatchShape
from repro.scheduler import AdapterJob, SchedulerConfig
from repro.serve import (
    CALIBRATION_TOLERANCE,
    CORRECTED_CALIBRATION_TOLERANCE,
    CalibrationTracker,
    CostAwareRouting,
    CostEstimator,
    OnlineOrchestrator,
    OrchestratorConfig,
    ReplicaView,
    ServeJob,
    SlotAdmission,
    StreamingSimExecutor,
    TenantProfile,
)

DATASETS = ["xsum", "cnn_dailymail", "wikisum", "mixed"]
NUM_STAGES = 2
COST = LayerCostModel(LLAMA3_8B, H100, strategy="fused_multi")
SCHED = SchedulerConfig(capacity=8192, num_stages=NUM_STAGES, use_milp=False)
EST = CostEstimator.for_scheduler(COST, SCHED)


def make_job(adapter_id=0, dataset="xsum", samples=16, gbs=8, seed=3):
    return AdapterJob(
        adapter_id,
        synthetic_dataset(adapter_id, dataset, samples, seed=seed),
        gbs,
    )


class TestTenantProfile:
    def test_from_job_matches_dataset_moments(self):
        job = make_job(samples=10, gbs=4)
        profile = TenantProfile.from_job(job)
        lengths = job.dataset.lengths.astype(float)
        assert profile.mean_length == pytest.approx(lengths.mean())
        assert profile.mean_sq_length == pytest.approx((lengths**2).mean())
        # 10 samples over 3 global batches: the short tail is pro-rated.
        assert profile.batch_samples == pytest.approx(10 / 3)

    def test_rejects_non_distribution_moments(self):
        with pytest.raises(ScheduleError, match="distribution"):
            TenantProfile(mean_length=100.0, mean_sq_length=1.0, batch_samples=4)
        with pytest.raises(ScheduleError, match="positive"):
            TenantProfile(mean_length=0.0, mean_sq_length=0.0, batch_samples=4)


class TestCostEstimator:
    def test_for_scheduler_copies_packing_parameters(self):
        est = CostEstimator.for_scheduler(COST, SCHED)
        assert est.num_stages == SCHED.num_stages
        assert est.capacity == SCHED.capacity
        assert est.padding_multiple == SCHED.padding_multiple

    def test_rejects_degenerate_parameters(self):
        with pytest.raises(ScheduleError):
            CostEstimator(COST, num_stages=0, capacity=8192)
        with pytest.raises(ScheduleError):
            CostEstimator(COST, num_stages=1, capacity=0)

    def test_microbatch_seconds_is_bottleneck_stage_time(self):
        shape = MicrobatchShape(tokens=4096, sum_sq_len=4096.0 * 512)
        assert EST.microbatch_seconds(shape) > 0
        assert EST.microbatch_seconds(MicrobatchShape(0, 0.0)) == 0.0

    def test_job_seconds_scales_with_remaining_batches(self):
        job = make_job(samples=16, gbs=8)  # 2 global batches
        whole = EST.job_seconds(job)
        half = EST.job_seconds(job, remaining_batches=1)
        assert whole == pytest.approx(2 * half)
        assert EST.job_seconds(job, remaining_batches=0) == 0.0

    def test_longer_samples_cost_more_than_equal_batch_counts(self):
        # The tentpole motivation: equal outstanding-batch counts, very
        # different expected seconds.
        short = make_job(0, "xsum", samples=16, gbs=8)
        long = make_job(1, "wikisum", samples=16, gbs=8)
        assert short.num_global_batches() == long.num_global_batches()
        assert EST.job_seconds(long) > 2 * EST.job_seconds(short)

    def test_placement_seconds_monotone_in_concurrency(self):
        job = make_job()
        prices = [EST.placement_seconds(job, n) for n in range(6)]
        assert all(b >= a for a, b in zip(prices, prices[1:]))

    def test_wave_seconds_sums_entries_plus_fill(self):
        profile = TenantProfile.from_job(make_job())
        one = EST.wave_seconds([(profile, 1)])
        two = EST.wave_seconds([(profile, 2)])
        # The second batch adds at most one batch of work (the
        # pipeline-fill term does not double).
        assert one < two <= 2 * one
        assert EST.wave_seconds([]) == 0.0
        assert EST.wave_seconds([(profile, 0)]) == 0.0

    def test_schedule_seconds_prices_noops_free(self):
        from repro.scheduler.types import Microbatch

        noop = Microbatch(capacity=SCHED.capacity)
        assert EST.schedule_seconds([noop]) == 0.0


class TestCalibrationTracker:
    def test_untracked_keys_are_neutral(self):
        tracker = CalibrationTracker()
        assert tracker.correction() == 1.0
        assert tracker.correction(adapter_id=3, replica=1) == 1.0

    def test_alpha_one_trusts_latest_wave(self):
        tracker = CalibrationTracker(alpha=1.0)
        tracker.observe(predicted=1.0, observed=2.0, tenants=[5], replica=0)
        assert tracker.correction(adapter_id=5) == pytest.approx(2.0)
        assert tracker.correction(replica=0) == pytest.approx(2.0)
        # The next wave's prediction already carries the 2.0 correction;
        # observing raw cost 0.5 means the corrected prediction was 4x
        # the truth, and alpha=1 adopts that raw ratio outright.
        tracker.observe(predicted=2.0, observed=0.5, tenants=[5], replica=0)
        assert tracker.correction(adapter_id=5) == pytest.approx(0.5)

    def test_update_is_geometric_ewma_of_raw_ratio(self):
        # Feeding *corrected* predictions back in must reduce to a
        # geometric EWMA of the raw observed/predicted ratio -- the
        # property that makes the feedback loop an integral controller.
        alpha, raw_ratio = 0.4, 2.0
        tracker = CalibrationTracker(alpha=alpha)
        factor = 1.0
        for wave in range(1, 6):
            # The estimator would have predicted factor * raw price.
            tracker.observe(factor * 1.0, raw_ratio * 1.0, tenants=[0])
            factor = tracker.correction(adapter_id=0)
            expected = raw_ratio ** (1 - (1 - alpha) ** wave)
            assert factor == pytest.approx(expected)

    def test_tenant_beats_replica_beats_neutral(self):
        tracker = CalibrationTracker(alpha=1.0)
        tracker.observe(1.0, 2.0, tenants=[1], replica=0)
        tracker.observe(1.0, 3.0, tenants=[2], replica=5)
        # Tracked tenant: its own factor, not its replica's.
        assert tracker.correction(adapter_id=1, replica=5) == pytest.approx(2.0)
        # Unknown tenant on a tracked replica: the replica factor.
        assert tracker.correction(adapter_id=9, replica=5) == pytest.approx(3.0)
        assert tracker.correction(adapter_id=9, replica=7) == 1.0

    def test_corrections_are_clamped(self):
        tracker = CalibrationTracker(alpha=1.0, max_correction=2.0)
        tracker.observe(1.0, 100.0, tenants=[0])
        assert tracker.correction(adapter_id=0) == 2.0
        tracker.observe(1.0, 1e-6, tenants=[0])
        assert tracker.correction(adapter_id=0) == 0.5

    def test_unusable_pairs_are_ignored(self):
        tracker = CalibrationTracker()
        tracker.observe(0.0, 5.0, tenants=[0], replica=0)
        tracker.observe(5.0, 0.0, tenants=[0], replica=0)
        assert tracker.tenant_corrections() == {}
        assert tracker.replica_corrections() == {}

    def test_rejects_degenerate_parameters(self):
        with pytest.raises(ScheduleError, match="alpha"):
            CalibrationTracker(alpha=0.0)
        with pytest.raises(ScheduleError, match="alpha"):
            CalibrationTracker(alpha=1.5)
        with pytest.raises(ScheduleError, match="max_correction"):
            CalibrationTracker(max_correction=0.5)


class TestCorrectedPricing:
    def make_corrected(self, factor, adapter_id=0, replica=None):
        tracker = CalibrationTracker(alpha=1.0)
        tracker.observe(
            1.0, factor, tenants=[adapter_id],
            replica=replica,
        )
        return CostEstimator.for_scheduler(COST, SCHED, calibration=tracker)

    def test_job_and_placement_prices_scale_by_tenant_factor(self):
        job = make_job()
        est = self.make_corrected(2.0, adapter_id=job.adapter_id)
        assert est.job_seconds(job) == pytest.approx(2 * EST.job_seconds(job))
        assert est.placement_seconds(job, 3) == pytest.approx(
            2 * EST.placement_seconds(job, 3)
        )

    def test_wave_price_scales_by_replica_factor(self):
        est = self.make_corrected(1.5, replica=4)
        profile = TenantProfile.from_job(make_job())
        entries = [(profile, 2)]
        assert est.wave_seconds(entries, replica=4) == pytest.approx(
            1.5 * EST.wave_seconds(entries)
        )
        # A different replica's waves are untouched.
        assert est.wave_seconds(entries, replica=0) == pytest.approx(
            EST.wave_seconds(entries)
        )

    def test_unknown_tenant_falls_back_to_replica_factor(self):
        est = self.make_corrected(2.0, adapter_id=99, replica=1)
        job = make_job(adapter_id=5)
        assert est.job_seconds(job, replica=1) == pytest.approx(
            2 * EST.job_seconds(job)
        )
        assert est.job_seconds(job) == pytest.approx(EST.job_seconds(job))


def serve_once(tenants, window, slots, tracker=None):
    """Run a workload on the streaming simulator with the estimator on."""
    estimator = (
        EST
        if tracker is None
        else CostEstimator.for_scheduler(COST, SCHED, calibration=tracker)
    )
    config = OrchestratorConfig(
        scheduler=SCHED,
        window_batches=window,
        admission=SlotAdmission(slots) if slots else None,
        estimator=estimator,
    )
    orchestrator = OnlineOrchestrator(
        StreamingSimExecutor(COST, NUM_STAGES), config
    )
    return orchestrator.run(tenants)


def drifting_job(adapter_id, seed, samples=96, gbs=8):
    """A tenant whose length regime steps mid-stream (stale moments)."""
    short = synthetic_dataset(adapter_id, "xsum", samples // 2, seed=seed)
    long = synthetic_dataset(adapter_id, "wikisum", samples // 2, seed=seed + 1)
    lengths = [s.length for s in short.samples]
    lengths += [s.length for s in long.samples]
    dataset = FinetuneDataset(
        adapter_id=adapter_id,
        samples=[
            Sample(adapter_id=adapter_id, index=i, length=length)
            for i, length in enumerate(lengths)
        ],
        source="drift",
    )
    return AdapterJob(adapter_id, dataset, gbs)


class TestCalibration:
    @settings(max_examples=15, deadline=None)
    @given(
        mix=st.lists(
            st.tuples(
                st.sampled_from(DATASETS),
                st.integers(min_value=8, max_value=32),  # samples
            ),
            min_size=1,
            max_size=4,
        ),
        window=st.sampled_from([1, 2, None]),
        seed=st.integers(min_value=0, max_value=10_000),
    )
    def test_predicted_wave_time_within_tolerance(self, mix, window, seed):
        """Estimator honesty, property-style over random tenant mixes."""
        tenants = [
            ServeJob(
                job=make_job(a, name, samples=samples, gbs=8, seed=seed),
                arrival_time=0.0,
            )
            for a, (name, samples) in enumerate(mix)
        ]
        result = serve_once(tenants, window, slots=None)
        assert result.violations == 0
        ratio = result.calibration_ratio()
        assert ratio is not None
        assert 1 / CALIBRATION_TOLERANCE <= ratio <= CALIBRATION_TOLERANCE

    def test_wave_estimates_empty_without_estimator(self):
        config = OrchestratorConfig(scheduler=SCHED, window_batches=1)
        orchestrator = OnlineOrchestrator(
            StreamingSimExecutor(COST, NUM_STAGES), config
        )
        result = orchestrator.run(
            [ServeJob(job=make_job(), arrival_time=0.0)]
        )
        assert result.wave_estimates == []
        assert result.calibration_ratio() is None

    @settings(max_examples=15, deadline=None)
    @given(
        mix=st.lists(
            st.tuples(
                st.sampled_from(DATASETS),
                st.integers(min_value=8, max_value=32),  # samples
            ),
            min_size=1,
            max_size=4,
        ),
        # Multi-wave windows only: feedback needs waves to learn from
        # (a whole-horizon run is one wave, so correction never acts).
        window=st.sampled_from([1, 2]),
        seed=st.integers(min_value=0, max_value=10_000),
    )
    def test_corrected_runs_meet_the_tightened_tolerance(
        self, mix, window, seed
    ):
        """With feedback active, the honesty band narrows -- the tentpole
        contract: corrected runs are held to
        CORRECTED_CALIBRATION_TOLERANCE, not the wide a priori band."""
        tenants = [
            ServeJob(
                job=make_job(a, name, samples=samples, gbs=8, seed=seed),
                arrival_time=0.0,
            )
            for a, (name, samples) in enumerate(mix)
        ]
        result = serve_once(
            tenants, window, slots=None, tracker=CalibrationTracker()
        )
        assert result.violations == 0
        ratio = result.calibration_ratio()
        assert ratio is not None
        assert (
            1 / CORRECTED_CALIBRATION_TOLERANCE
            <= ratio
            <= CORRECTED_CALIBRATION_TOLERANCE
        )

    def test_feedback_tightens_a_drifting_trace(self):
        # The bench_calibration.py headline, asserted at test scale: on
        # a trace whose length regime steps mid-run, the corrected run's
        # per-wave calibration is strictly tighter than the uncorrected
        # one, and execution is unchanged (the correction rescales
        # prices, not work).  The run-level summed ratio is gated in the
        # benchmark, where over- and under-predicted phases are measured
        # at depth (on this 2-stage test pipeline the uncorrected sum
        # happens to cancel to near-1.0, which is exactly why
        # mean_wave_calibration_error exists).
        tenants = [
            ServeJob(job=drifting_job(a, seed=3 + a), arrival_time=0.0)
            for a in range(2)
        ]
        uncorrected = serve_once(tenants, window=1, slots=None)
        corrected = serve_once(
            tenants, window=1, slots=None,
            tracker=CalibrationTracker(alpha=0.6),
        )
        assert (
            corrected.mean_wave_calibration_error()
            < uncorrected.mean_wave_calibration_error()
        )
        ratio = corrected.calibration_ratio()
        assert (
            1 / CORRECTED_CALIBRATION_TOLERANCE
            <= ratio
            <= CORRECTED_CALIBRATION_TOLERANCE
        )
        assert corrected.total_tokens == uncorrected.total_tokens
        assert corrected.makespan == pytest.approx(uncorrected.makespan)

    def test_wave_observations_feed_the_tracker(self):
        tracker = CalibrationTracker()
        tenants = [
            ServeJob(job=make_job(a, samples=16), arrival_time=0.0)
            for a in range(2)
        ]
        result = serve_once(tenants, window=1, slots=None, tracker=tracker)
        assert len(result.wave_estimates) >= 2
        # Every tenant that ran in a wave has a factor; the replica too.
        assert set(tracker.tenant_corrections()) == {0, 1}
        assert set(tracker.replica_corrections()) == {0}
        # The factors absorbed real ratios, not the neutral 1.0.
        for factor in tracker.tenant_corrections().values():
            assert factor != 1.0

    def test_idle_time_excluded_from_observed(self):
        # Two far-apart arrivals: the gap is idle fast-forward, and must
        # not inflate observed wave time (which would fake
        # under-prediction).
        tenants = [
            ServeJob(job=make_job(0, samples=8), arrival_time=0.0),
            ServeJob(job=make_job(1, samples=8), arrival_time=1000.0),
        ]
        result = serve_once(tenants, window=None, slots=None)
        observed = sum(o for _, o in result.wave_estimates)
        assert observed < 100.0  # the 1000s gap is not in there


def cost_view(index, remaining, num_active=0, batches=0):
    return ReplicaView(
        index=index,
        clock=0.0,
        outstanding_batches=batches,
        num_active=num_active,
        num_pending=0,
        slots_free=None,
        expected_remaining_time=remaining,
    )


class TestCostAwareRouting:
    def test_prefers_less_expected_time_despite_more_batches(self):
        # The whole point: replica 0 owes more *batches* but less *time*.
        policy = CostAwareRouting(EST)
        job = ServeJob(job=make_job(5, "xsum"), arrival_time=0.0)
        views = [
            cost_view(0, remaining=1.0, batches=20),
            cost_view(1, remaining=5.0, batches=2),
        ]
        assert policy.choose(job, views) == 0

    def test_falls_back_to_batch_counts_without_estimates(self):
        policy = CostAwareRouting(EST)
        job = ServeJob(job=make_job(5), arrival_time=0.0)
        views = [
            cost_view(0, remaining=None, batches=9),
            cost_view(1, remaining=None, batches=2),
        ]
        assert policy.choose(job, views) == 1

    def test_index_breaks_ties(self):
        policy = CostAwareRouting()
        job = ServeJob(job=make_job(5), arrival_time=0.0)
        views = [cost_view(0, remaining=2.0), cost_view(1, remaining=2.0)]
        assert policy.choose(job, views) == 0

    @settings(max_examples=50, deadline=None)
    @given(
        remainings=st.lists(
            st.floats(min_value=0.0, max_value=100.0),
            min_size=2,
            max_size=5,
        ),
        actives=st.lists(
            st.integers(min_value=0, max_value=8), min_size=5, max_size=5
        ),
        dataset=st.sampled_from(DATASETS),
    )
    def test_never_picks_strictly_dominated_replica(
        self, remainings, actives, dataset
    ):
        """A replica worse on expected time and concurrency never wins."""
        views = [
            cost_view(i, remaining=r, num_active=a)
            for i, (r, a) in enumerate(zip(remainings, actives))
        ]
        job = ServeJob(job=make_job(99, dataset), arrival_time=0.0)
        choice = views[CostAwareRouting(EST).choose(job, views)]
        for other in views:
            dominates = (
                other.expected_remaining_time < choice.expected_remaining_time
                and other.num_active <= choice.num_active
            )
            assert not dominates, (
                f"picked replica {choice.index} although "
                f"{other.index} strictly dominates it"
            )
