"""Tests for the cost estimator and the cost-driven control plane.

Covers the estimator primitives, the hypothesis calibration property
(predicted wave time within the documented tolerance of the streaming
simulator's observed time across random tenant mixes), and the
cost-aware router's no-dominated-choice guarantee.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data import synthetic_dataset
from repro.errors import ScheduleError
from repro.gpu import H100
from repro.models.config import LLAMA3_8B
from repro.models.layer_costs import LayerCostModel, MicrobatchShape
from repro.scheduler import AdapterJob, SchedulerConfig
from repro.serve import (
    CALIBRATION_TOLERANCE,
    CostAwareRouting,
    CostEstimator,
    OnlineOrchestrator,
    OrchestratorConfig,
    ReplicaView,
    ServeJob,
    SlotAdmission,
    StreamingSimExecutor,
    TenantProfile,
)

DATASETS = ["xsum", "cnn_dailymail", "wikisum", "mixed"]
NUM_STAGES = 2
COST = LayerCostModel(LLAMA3_8B, H100, strategy="fused_multi")
SCHED = SchedulerConfig(capacity=8192, num_stages=NUM_STAGES, use_milp=False)
EST = CostEstimator.for_scheduler(COST, SCHED)


def make_job(adapter_id=0, dataset="xsum", samples=16, gbs=8, seed=3):
    return AdapterJob(
        adapter_id,
        synthetic_dataset(adapter_id, dataset, samples, seed=seed),
        gbs,
    )


class TestTenantProfile:
    def test_from_job_matches_dataset_moments(self):
        job = make_job(samples=10, gbs=4)
        profile = TenantProfile.from_job(job)
        lengths = job.dataset.lengths.astype(float)
        assert profile.mean_length == pytest.approx(lengths.mean())
        assert profile.mean_sq_length == pytest.approx((lengths**2).mean())
        # 10 samples over 3 global batches: the short tail is pro-rated.
        assert profile.batch_samples == pytest.approx(10 / 3)

    def test_rejects_non_distribution_moments(self):
        with pytest.raises(ScheduleError, match="distribution"):
            TenantProfile(mean_length=100.0, mean_sq_length=1.0, batch_samples=4)
        with pytest.raises(ScheduleError, match="positive"):
            TenantProfile(mean_length=0.0, mean_sq_length=0.0, batch_samples=4)


class TestCostEstimator:
    def test_for_scheduler_copies_packing_parameters(self):
        est = CostEstimator.for_scheduler(COST, SCHED)
        assert est.num_stages == SCHED.num_stages
        assert est.capacity == SCHED.capacity
        assert est.padding_multiple == SCHED.padding_multiple

    def test_rejects_degenerate_parameters(self):
        with pytest.raises(ScheduleError):
            CostEstimator(COST, num_stages=0, capacity=8192)
        with pytest.raises(ScheduleError):
            CostEstimator(COST, num_stages=1, capacity=0)

    def test_microbatch_seconds_is_bottleneck_stage_time(self):
        shape = MicrobatchShape(tokens=4096, sum_sq_len=4096.0 * 512)
        assert EST.microbatch_seconds(shape) > 0
        assert EST.microbatch_seconds(MicrobatchShape(0, 0.0)) == 0.0

    def test_job_seconds_scales_with_remaining_batches(self):
        job = make_job(samples=16, gbs=8)  # 2 global batches
        whole = EST.job_seconds(job)
        half = EST.job_seconds(job, remaining_batches=1)
        assert whole == pytest.approx(2 * half)
        assert EST.job_seconds(job, remaining_batches=0) == 0.0

    def test_longer_samples_cost_more_than_equal_batch_counts(self):
        # The tentpole motivation: equal outstanding-batch counts, very
        # different expected seconds.
        short = make_job(0, "xsum", samples=16, gbs=8)
        long = make_job(1, "wikisum", samples=16, gbs=8)
        assert short.num_global_batches() == long.num_global_batches()
        assert EST.job_seconds(long) > 2 * EST.job_seconds(short)

    def test_placement_seconds_monotone_in_concurrency(self):
        job = make_job()
        prices = [EST.placement_seconds(job, n) for n in range(6)]
        assert all(b >= a for a, b in zip(prices, prices[1:]))

    def test_wave_seconds_sums_entries_plus_fill(self):
        profile = TenantProfile.from_job(make_job())
        one = EST.wave_seconds([(profile, 1)])
        two = EST.wave_seconds([(profile, 2)])
        # The second batch adds at most one batch of work (the
        # pipeline-fill term does not double).
        assert one < two <= 2 * one
        assert EST.wave_seconds([]) == 0.0
        assert EST.wave_seconds([(profile, 0)]) == 0.0

    def test_schedule_seconds_prices_noops_free(self):
        from repro.scheduler.types import Microbatch

        noop = Microbatch(capacity=SCHED.capacity)
        assert EST.schedule_seconds([noop]) == 0.0


def serve_once(tenants, window, slots):
    """Run a workload on the streaming simulator with the estimator on."""
    config = OrchestratorConfig(
        scheduler=SCHED,
        window_batches=window,
        admission=SlotAdmission(slots) if slots else None,
        estimator=EST,
    )
    orchestrator = OnlineOrchestrator(
        StreamingSimExecutor(COST, NUM_STAGES), config
    )
    return orchestrator.run(tenants)


class TestCalibration:
    @settings(max_examples=15, deadline=None)
    @given(
        mix=st.lists(
            st.tuples(
                st.sampled_from(DATASETS),
                st.integers(min_value=8, max_value=32),  # samples
            ),
            min_size=1,
            max_size=4,
        ),
        window=st.sampled_from([1, 2, None]),
        seed=st.integers(min_value=0, max_value=10_000),
    )
    def test_predicted_wave_time_within_tolerance(self, mix, window, seed):
        """Estimator honesty, property-style over random tenant mixes."""
        tenants = [
            ServeJob(
                job=make_job(a, name, samples=samples, gbs=8, seed=seed),
                arrival_time=0.0,
            )
            for a, (name, samples) in enumerate(mix)
        ]
        result = serve_once(tenants, window, slots=None)
        assert result.violations == 0
        ratio = result.calibration_ratio()
        assert ratio is not None
        assert 1 / CALIBRATION_TOLERANCE <= ratio <= CALIBRATION_TOLERANCE

    def test_wave_estimates_empty_without_estimator(self):
        config = OrchestratorConfig(scheduler=SCHED, window_batches=1)
        orchestrator = OnlineOrchestrator(
            StreamingSimExecutor(COST, NUM_STAGES), config
        )
        result = orchestrator.run(
            [ServeJob(job=make_job(), arrival_time=0.0)]
        )
        assert result.wave_estimates == []
        assert result.calibration_ratio() is None

    def test_idle_time_excluded_from_observed(self):
        # Two far-apart arrivals: the gap is idle fast-forward, and must
        # not inflate observed wave time (which would fake
        # under-prediction).
        tenants = [
            ServeJob(job=make_job(0, samples=8), arrival_time=0.0),
            ServeJob(job=make_job(1, samples=8), arrival_time=1000.0),
        ]
        result = serve_once(tenants, window=None, slots=None)
        observed = sum(o for _, o in result.wave_estimates)
        assert observed < 100.0  # the 1000s gap is not in there


def cost_view(index, remaining, num_active=0, batches=0):
    return ReplicaView(
        index=index,
        clock=0.0,
        outstanding_batches=batches,
        num_active=num_active,
        num_pending=0,
        slots_free=None,
        expected_remaining_time=remaining,
    )


class TestCostAwareRouting:
    def test_prefers_less_expected_time_despite_more_batches(self):
        # The whole point: replica 0 owes more *batches* but less *time*.
        policy = CostAwareRouting(EST)
        job = ServeJob(job=make_job(5, "xsum"), arrival_time=0.0)
        views = [
            cost_view(0, remaining=1.0, batches=20),
            cost_view(1, remaining=5.0, batches=2),
        ]
        assert policy.choose(job, views) == 0

    def test_falls_back_to_batch_counts_without_estimates(self):
        policy = CostAwareRouting(EST)
        job = ServeJob(job=make_job(5), arrival_time=0.0)
        views = [
            cost_view(0, remaining=None, batches=9),
            cost_view(1, remaining=None, batches=2),
        ]
        assert policy.choose(job, views) == 1

    def test_index_breaks_ties(self):
        policy = CostAwareRouting()
        job = ServeJob(job=make_job(5), arrival_time=0.0)
        views = [cost_view(0, remaining=2.0), cost_view(1, remaining=2.0)]
        assert policy.choose(job, views) == 0

    @settings(max_examples=50, deadline=None)
    @given(
        remainings=st.lists(
            st.floats(min_value=0.0, max_value=100.0),
            min_size=2,
            max_size=5,
        ),
        actives=st.lists(
            st.integers(min_value=0, max_value=8), min_size=5, max_size=5
        ),
        dataset=st.sampled_from(DATASETS),
    )
    def test_never_picks_strictly_dominated_replica(
        self, remainings, actives, dataset
    ):
        """A replica worse on expected time and concurrency never wins."""
        views = [
            cost_view(i, remaining=r, num_active=a)
            for i, (r, a) in enumerate(zip(remainings, actives))
        ]
        job = ServeJob(job=make_job(99, dataset), arrival_time=0.0)
        choice = views[CostAwareRouting(EST).choose(job, views)]
        for other in views:
            dominates = (
                other.expected_remaining_time < choice.expected_remaining_time
                and other.num_active <= choice.num_active
            )
            assert not dominates, (
                f"picked replica {choice.index} although "
                f"{other.index} strictly dominates it"
            )
