"""Edge cases of the partial-drain unlock (``drain_for``/``drain_job``):
migrants with nothing in flight, drains landing exactly on a wave
boundary, and the ``drain_steps_saved`` ledger under mixed
partial-then-full drain sequences."""

from repro.data import synthetic_dataset
from repro.gpu import H100
from repro.models.config import LLAMA3_8B
from repro.models.layer_costs import LayerCostModel
from repro.scheduler import AdapterJob, SchedulerConfig
from repro.serve import (
    OnlineOrchestrator,
    OrchestratorConfig,
    ServeJob,
    SlotAdmission,
    StreamingSimExecutor,
)

DATASETS = ["xsum", "cnn_dailymail", "wikisum", "mixed"]
COST = LayerCostModel(LLAMA3_8B, H100, strategy="fused_multi")


def make_jobs(count, samples=24, gbs=4, seed=3):
    return [
        AdapterJob(a, synthetic_dataset(a, DATASETS[a % 4], samples, seed=seed),
                   gbs)
        for a in range(count)
    ]


def mid_flight_orchestrator(num_stages=4, num_jobs=2):
    """Two active jobs on a deep pipeline, one executed wave: the 1F1B
    tail is in flight, so both jobs sit mid-flight between steps."""
    config = OrchestratorConfig(
        scheduler=SchedulerConfig(capacity=8192, num_stages=num_stages,
                                  use_milp=False),
        window_batches=1,
        admission=SlotAdmission(num_jobs),
    )
    orchestrator = OnlineOrchestrator(
        StreamingSimExecutor(COST, num_stages), config
    )
    orchestrator.start([])
    for job in make_jobs(num_jobs):
        orchestrator.offer(ServeJob(job=job, arrival_time=0.0))
    orchestrator.step()
    return orchestrator


def in_flight(orchestrator):
    """Scheduled-but-unstepped batches across all active jobs.

    Probed with a partial drain for an adapter id no job owns: with no
    in-flight window to cut, ``drain_for`` forces nothing and its
    return value is exactly the outstanding tail.
    """
    return orchestrator.drain_for(-1)


class TestDrainForNoInFlightWindow:
    def test_drain_for_unsubmitted_adapter_is_a_noop(self):
        orchestrator = mid_flight_orchestrator()
        clock = orchestrator.clock
        drainable = sorted(orchestrator.drainable_jobs())
        # Adapter 99 never submitted a microbatch: there is no window to
        # cut, so nothing is forced -- the clock holds, the mid-flight
        # set is untouched, and every outstanding step is "saved".
        saved = orchestrator.drain_for(99)
        assert saved > 0
        assert orchestrator.clock == clock
        assert sorted(orchestrator.drainable_jobs()) == drainable
        assert orchestrator.drain_for(99) == saved  # still a no-op

    def test_executor_drain_job_without_presence_forces_nothing(self):
        executor = StreamingSimExecutor(COST, num_stages=4)
        assert executor.drain_job(0) == []
        assert executor.clock == 0.0


class TestDrainOnWaveBoundary:
    def test_drain_for_at_a_boundary_saves_zero(self):
        orchestrator = mid_flight_orchestrator()
        # A full flush lands every active job exactly on its step
        # boundary...
        orchestrator.flush()
        assert orchestrator.drainable_jobs() == []
        boundary_ids = [aid for aid, _, _, _ in orchestrator.migratable_jobs()]
        assert boundary_ids  # unfinished actives are now all ejectable
        # ...so a partial drain for any of them has no window to cut:
        # nothing is in flight to force *or* to save.
        clock = orchestrator.clock
        assert orchestrator.drain_for(boundary_ids[0]) == 0
        assert orchestrator.clock == clock

    def test_shallow_pipeline_is_always_on_a_boundary(self):
        # One stage: each submit runs its own backward immediately, so
        # between steps there is never a tail in flight and the partial
        # drain degenerates to a no-op.
        orchestrator = mid_flight_orchestrator(num_stages=1)
        assert orchestrator.drainable_jobs() == []
        assert in_flight(orchestrator) == 0

    def test_deep_pipeline_holds_a_tail_between_steps(self):
        orchestrator = mid_flight_orchestrator(num_stages=4)
        assert in_flight(orchestrator) > 0
        assert orchestrator.drainable_jobs() != []


class TestPartialThenFullDrainLedger:
    def test_partial_drain_saves_the_other_tenants_steps(self):
        orchestrator = mid_flight_orchestrator()
        drainable = sorted(orchestrator.drainable_jobs())
        assert len(drainable) == 2
        migrant = drainable[0][0]
        before = in_flight(orchestrator)
        saved = orchestrator.drain_for(migrant)
        # The migrant reached its boundary; the other tenant's tail is
        # still in flight -- exactly the steps the partial drain saved.
        assert 0 < saved < before
        assert saved == in_flight(orchestrator)
        assert migrant in [a for a, _, _, _ in orchestrator.migratable_jobs()]

    def test_full_drain_after_partial_saves_nothing_more(self):
        orchestrator = mid_flight_orchestrator()
        migrant = sorted(orchestrator.drainable_jobs())[0][0]
        first = orchestrator.drain_for(migrant)
        assert first > 0
        orchestrator.flush()
        # The flush forced the remaining tail: a second partial drain
        # (for anyone) finds nothing in flight.
        for aid, _, _, _ in orchestrator.migratable_jobs():
            assert orchestrator.drain_for(aid) == 0

    def test_repeated_partial_drain_is_idempotent(self):
        orchestrator = mid_flight_orchestrator()
        migrant = sorted(orchestrator.drainable_jobs())[0][0]
        first = orchestrator.drain_for(migrant)
        clock = orchestrator.clock
        # The migrant is already at its boundary; draining for it again
        # forces nothing new and reports the same outstanding tail.
        assert orchestrator.drain_for(migrant) == first
        assert orchestrator.clock == clock
