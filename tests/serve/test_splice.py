"""Tests for cross-window stream splicing."""

from repro.scheduler import Assignment, Microbatch, find_violations
from repro.scheduler.bubble import dependency_gap
from repro.data.dataset import Sample
from repro.serve import StreamSplicer


def mb(aid, index, batch, length=10):
    out = Microbatch(capacity=1024, padding_multiple=1)
    out.add(Assignment(Sample(aid, index, length), batch))
    return out


class TestStreamSplicer:
    def test_single_window_passthrough(self):
        splicer = StreamSplicer(num_stages=1)
        window = [mb(0, 0, 0), mb(0, 1, 1)]
        out = splicer.splice(window)
        assert len(out) == 2
        assert splicer.noops_inserted == 0
        assert find_violations(out, 1) == []

    def test_junction_noops_inserted(self):
        # Window 1 ends with adapter 0 batch 0; window 2 starts with its
        # batch 1 immediately -- the junction must be padded to the gap.
        stages = 4
        splicer = StreamSplicer(num_stages=stages)
        first = splicer.splice([mb(0, 0, 0)])
        second = splicer.splice([mb(0, 1, 1)])
        stream = first + second
        assert splicer.noops_inserted == dependency_gap(stages) - 1
        assert find_violations(stream, stages) == []
        assert all(m.is_noop for m in second[:-1])

    def test_other_adapters_fill_junction(self):
        # Work from another adapter between the two batches means fewer
        # (here: zero) junction no-ops.
        stages = 2
        splicer = StreamSplicer(num_stages=stages)
        first = splicer.splice([mb(0, 0, 0), mb(1, 0, 0), mb(2, 0, 0)])
        second = splicer.splice([mb(0, 1, 1)])
        assert splicer.noops_inserted == 0
        assert find_violations(first + second, stages) == []

    def test_plan_id_stamped_on_window_and_noops(self):
        splicer = StreamSplicer(num_stages=3)
        splicer.splice([mb(0, 0, 0)], plan_id=0)
        second = splicer.splice([mb(0, 1, 1)], plan_id=7)
        assert {m.plan_id for m in second} == {7}

    def test_retire_forgets_adapter(self):
        stages = 4
        splicer = StreamSplicer(num_stages=stages)
        splicer.splice([mb(0, 0, 0)])
        splicer.retire(0)
        # With the bookkeeping gone, a (new tenant reusing the id) batch-1
        # microbatch is not spaced against the retired stream.
        out = splicer.splice([mb(0, 1, 1)])
        assert len(out) == 1

    def test_positions_accumulate_across_windows(self):
        splicer = StreamSplicer(num_stages=2)
        splicer.splice([mb(0, 0, 0)])
        splicer.splice([mb(1, 0, 0)])
        assert splicer.length == 2
        out = splicer.splice([mb(0, 1, 1)])
        assert splicer.length == 2 + len(out)

    def test_truncate_forgets_phantom_positions(self):
        # A wave cut short: positions recorded past the cut must not
        # constrain (or under-constrain) the next junction.
        stages = 4
        splicer = StreamSplicer(num_stages=stages)
        window = splicer.splice([mb(0, 0, 0), mb(1, 0, 0), mb(1, 1, 1)])
        # Only the first microbatch was actually submitted.
        splicer.truncate(1)
        assert splicer.length == 1
        # Adapter 1 was never really emitted; re-splicing its batches
        # must still space batch 1 against batch 0 at the *real*
        # positions.
        resumed = splicer.splice([mb(1, 0, 0), mb(1, 1, 1)])
        stream = window[:1] + resumed
        assert find_violations(stream, stages) == []

    def test_truncate_keeps_real_prefix_positions(self):
        stages = 2
        splicer = StreamSplicer(num_stages=stages)
        first = splicer.splice([mb(0, 0, 0), mb(0, 1, 1)])
        splicer.truncate(len(first))  # no-op cut at the window end
        second = splicer.splice([mb(0, 2, 2)])
        assert find_violations(first + second, stages) == []

    def test_truncate_beyond_length_rejected(self):
        import pytest

        splicer = StreamSplicer(num_stages=2)
        splicer.splice([mb(0, 0, 0)])
        with pytest.raises(ValueError, match="truncate"):
            splicer.truncate(5)
