"""Tests for per-job records and the per-class / SLO aggregates."""

import pytest

from repro.errors import ScheduleError
from repro.serve import JobRecord, OrchestratorResult, ReplicaSetResult


def record(aid, arrival=0.0, admit=None, finish=None, priority=0,
           deadline=None, preemptions=0):
    return JobRecord(
        adapter_id=aid,
        arrival_time=arrival,
        admit_time=admit,
        finish_time=finish,
        priority=priority,
        deadline=deadline,
        preemptions=preemptions,
    )


class TestJobRecordSLO:
    def test_deadline_missed_without_deadline_is_none(self):
        assert record(0, finish=5.0).deadline_missed is None

    def test_deadline_met(self):
        assert record(0, finish=5.0, deadline=6.0).deadline_missed is False

    def test_deadline_blown(self):
        assert record(0, finish=7.0, deadline=6.0).deadline_missed is True

    def test_unfinished_with_deadline_counts_as_miss(self):
        assert record(0, deadline=6.0).deadline_missed is True


class TestPerClassAggregates:
    def result(self):
        records = {
            0: record(0, arrival=0.0, admit=0.0, finish=10.0, priority=0),
            1: record(1, arrival=0.0, admit=4.0, finish=6.0, priority=1,
                      preemptions=0),
            2: record(2, arrival=2.0, admit=2.0, finish=4.0, priority=1,
                      deadline=5.0),
            3: record(3, arrival=0.0, admit=6.0, finish=20.0, priority=0,
                      deadline=8.0, preemptions=2),
        }
        return OrchestratorResult(records=records, makespan=20.0,
                                  total_tokens=100)

    def test_mean_jct_per_class(self):
        result = self.result()
        assert result.mean_completion_time(priority=1) == pytest.approx(4.0)
        assert result.mean_completion_time(priority=0) == pytest.approx(15.0)
        # The unfiltered mean is unchanged by the filter's existence.
        assert result.mean_completion_time() == pytest.approx(
            (10.0 + 6.0 + 2.0 + 20.0) / 4
        )

    def test_jct_by_class_orders_most_urgent_first(self):
        by_class = self.result().jct_by_class()
        assert list(by_class) == [1, 0]
        assert by_class[1] == pytest.approx(4.0)

    def test_queueing_per_class(self):
        result = self.result()
        assert result.mean_queueing_delay(priority=1) == pytest.approx(2.0)
        assert result.mean_queueing_delay(priority=0) == pytest.approx(3.0)
        assert result.queueing_by_class()[0] == pytest.approx(3.0)

    def test_total_preemptions(self):
        assert self.result().total_preemptions() == 2

    def test_deadline_miss_rate_counts_only_deadline_jobs(self):
        result = self.result()
        # Two jobs carry deadlines; job 3 (finish 20 > 8) missed.
        assert result.deadline_misses() == 1
        assert result.deadline_miss_rate() == pytest.approx(0.5)

    def test_miss_rate_without_deadlines_is_zero(self):
        result = OrchestratorResult(records={0: record(0, finish=1.0)})
        assert result.deadline_miss_rate() == 0.0


class TestReplicaSetAggregates:
    def test_preemptions_sum_over_replicas(self):
        replicas = [
            OrchestratorResult(preemptions=2, makespan=1.0),
            OrchestratorResult(preemptions=1, makespan=1.0),
        ]
        result = ReplicaSetResult(replicas=replicas)
        assert result.preemptions == 3

    def test_per_class_views_work_on_merged_records(self):
        records = {
            0: record(0, arrival=0.0, finish=4.0, priority=1),
            1: record(1, arrival=0.0, finish=8.0, priority=0),
        }
        result = ReplicaSetResult(
            replicas=[OrchestratorResult(makespan=8.0)], records=records
        )
        assert result.mean_completion_time(priority=1) == pytest.approx(4.0)
        assert result.jct_by_class() == {1: pytest.approx(4.0),
                                         0: pytest.approx(8.0)}

    def test_zero_replicas_rejected(self):
        with pytest.raises(ScheduleError, match="replica"):
            ReplicaSetResult(replicas=[])


class TestRejectionAggregates:
    def result(self):
        from repro.serve import JobOutcome  # noqa: F401 - used below

        records = {
            0: record(0, admit=0.0, finish=3.0, deadline=5.0),
            1: record(1, admit=0.0, finish=9.0, deadline=5.0),   # late
            2: record(2, deadline=5.0),                          # rejected
            3: record(3, admit=0.0, finish=1.0),                 # no deadline
        }
        records[2].rejected_time = 0.5
        return OrchestratorResult(records=records, makespan=9.0, rejected=1)

    def test_outcomes(self):
        from repro.serve import JobOutcome

        result = self.result()
        assert result.records[0].outcome is JobOutcome.FINISHED
        assert result.records[2].outcome is JobOutcome.REJECTED
        assert record(9).outcome is JobOutcome.UNFINISHED
        assert result.rejections() == 1

    def test_rejection_counts_in_strict_miss_rate_only(self):
        result = self.result()
        # Strict: 2 of 3 deadline-carrying jobs missed (late + rejected).
        assert result.deadline_miss_rate() == pytest.approx(2 / 3)
        # Served-only: 1 of 2 served deadline jobs missed.
        assert result.served_deadline_miss_rate() == pytest.approx(1 / 2)
        # Goodput: exactly one deadline job finished on time.
        assert result.deadline_goodput() == 1


class TestPackingCounters:
    def result(self):
        return OrchestratorResult(
            total_tokens=600,
            total_padded_tokens=800,
            capacity=100,
            total_microbatches=10,
            noop_microbatches=2,
        )

    def test_padding_waste(self):
        assert self.result().padding_waste() == pytest.approx(1 - 600 / 800)
        assert OrchestratorResult().padding_waste() == 0.0

    def test_bubble_rate(self):
        assert self.result().bubble_rate() == pytest.approx(0.2)
        assert OrchestratorResult().bubble_rate() == 0.0

    def test_pack_efficiency(self):
        # 600 real tokens over 8 real slots of 100-token capacity.
        assert self.result().pack_efficiency() == pytest.approx(0.75)
        assert OrchestratorResult().pack_efficiency() == 0.0
        all_noops = OrchestratorResult(
            capacity=100, total_microbatches=3, noop_microbatches=3
        )
        assert all_noops.pack_efficiency() == 0.0

    def fleet(self):
        replicas = [
            OrchestratorResult(
                total_tokens=600, total_padded_tokens=800, capacity=100,
                total_microbatches=10, noop_microbatches=2, makespan=1.0,
            ),
            OrchestratorResult(
                total_tokens=300, total_padded_tokens=1200, capacity=100,
                total_microbatches=20, noop_microbatches=5, makespan=1.0,
            ),
        ]
        return ReplicaSetResult(replicas=replicas)

    def test_fleet_padding_waste_is_the_merged_stream_identity(self):
        fleet = self.fleet()
        # Identical to recomputing on the concatenated streams: sums of
        # tokens and padded tokens, not a mean of per-replica ratios.
        assert fleet.padding_waste() == pytest.approx(1 - 900 / 2000)
        merged = OrchestratorResult(
            total_tokens=fleet.total_tokens,
            total_padded_tokens=fleet.total_padded_tokens,
        )
        assert fleet.padding_waste() == pytest.approx(merged.padding_waste())

    def test_fleet_bubble_rate_is_the_merged_stream_identity(self):
        fleet = self.fleet()
        assert fleet.bubble_rate() == pytest.approx(7 / 30)
        merged = OrchestratorResult(
            total_microbatches=fleet.total_microbatches,
            noop_microbatches=fleet.noop_microbatches,
        )
        assert fleet.bubble_rate() == pytest.approx(merged.bubble_rate())

    def test_fleet_pack_efficiency_prices_capacity_per_replica(self):
        fleet = self.fleet()
        # 900 tokens over 100 * 8 + 100 * 15 slot-capacity.
        assert fleet.pack_efficiency() == pytest.approx(900 / 2300)
        # Heterogeneous capacities change the budget, not the tokens.
        uneven = ReplicaSetResult(
            replicas=[
                OrchestratorResult(
                    total_tokens=600, capacity=200,
                    total_microbatches=10, noop_microbatches=2, makespan=1.0,
                ),
                OrchestratorResult(
                    total_tokens=300, capacity=100,
                    total_microbatches=20, noop_microbatches=5, makespan=1.0,
                ),
            ]
        )
        assert uneven.pack_efficiency() == pytest.approx(900 / 3100)

    def test_fleet_counters_zero_without_streams(self):
        fleet = ReplicaSetResult(replicas=[OrchestratorResult(makespan=1.0)])
        assert fleet.padding_waste() == 0.0
        assert fleet.bubble_rate() == 0.0
        assert fleet.pack_efficiency() == 0.0


class TestCalibrationAggregates:
    def test_ratio_and_error(self):
        result = OrchestratorResult(
            wave_estimates=[(1.0, 2.0), (3.0, 2.0)],
        )
        assert result.calibration_ratio() == pytest.approx(1.0)
        assert result.calibration_error() == pytest.approx(0.0)
        skewed = OrchestratorResult(wave_estimates=[(4.0, 2.0)])
        assert skewed.calibration_ratio() == pytest.approx(2.0)
        assert skewed.calibration_error() == pytest.approx(0.6931, rel=1e-3)

    def test_none_without_observations(self):
        empty = OrchestratorResult()
        assert empty.calibration_ratio() is None
        assert empty.calibration_error() is None

    def test_fleet_ratio_sums_over_replicas(self):
        fleet = ReplicaSetResult(
            replicas=[
                OrchestratorResult(wave_estimates=[(1.0, 1.0)], rejected=1),
                OrchestratorResult(wave_estimates=[(3.0, 3.0)], rejected=2),
            ]
        )
        assert fleet.calibration_ratio() == pytest.approx(1.0)
        assert fleet.rejected == 3


class TestIntervalWeightedAggregation:
    """Elastic fleets weight means by each replica's *active interval*;
    a mid-run joiner (or early retiree) must not be charged for time it
    was never in the fleet."""

    def elastic(self):
        # Replica 0 serves the whole [0, 300] run at 50% busy; replica 1
        # joins at t=200 (100 active seconds, busy 60 of them); replica 2
        # retires at t=100 (busy 30 of its 100 seconds).
        replicas = [
            OrchestratorResult(utilization=0.5, makespan=300.0),
            OrchestratorResult(utilization=0.2, makespan=300.0),
            OrchestratorResult(utilization=0.3, makespan=100.0),
        ]
        intervals = [(0.0, 300.0), (200.0, 300.0), (0.0, 100.0)]
        return ReplicaSetResult(replicas=replicas,
                                replica_intervals=intervals)

    def test_utilization_weights_by_active_interval(self):
        # Busy seconds: 150 + 60 + 30 = 240, over 300 + 100 + 100
        # bought seconds.
        assert self.elastic().utilization() == pytest.approx(240.0 / 500.0)

    def test_mid_run_join_and_retire_shift_the_mean(self):
        # Under legacy makespan weighting the same fleet would report
        # 240 / 700 -- the joiner billed for 300 seconds it served 100
        # of.  Recording intervals must change the answer.
        legacy = ReplicaSetResult(replicas=self.elastic().replicas)
        assert legacy.utilization() == pytest.approx(240.0 / 700.0)
        assert self.elastic().utilization() > legacy.utilization()

    def test_fixed_fleet_keeps_the_makespan_identity(self):
        replicas = [
            OrchestratorResult(utilization=0.5, makespan=10.0),
            OrchestratorResult(utilization=1.0, makespan=30.0),
        ]
        result = ReplicaSetResult(replicas=replicas)
        assert result.replica_intervals == []
        assert result.utilization() == pytest.approx(
            (0.5 * 10.0 + 1.0 * 30.0) / 40.0
        )

    def test_interval_count_must_match_replicas(self):
        with pytest.raises(ScheduleError, match="replica_intervals"):
            ReplicaSetResult(
                replicas=[OrchestratorResult(makespan=1.0)],
                replica_intervals=[(0.0, 1.0), (0.0, 1.0)],
            )

    def test_fleet_calibration_error_weights_by_interval(self):
        import math

        replicas = [
            OrchestratorResult(makespan=300.0,
                               wave_estimates=[(2.0, 1.0)]),   # error ln 2
            OrchestratorResult(makespan=300.0,
                               wave_estimates=[(1.0, 1.0)]),   # error 0
            OrchestratorResult(makespan=100.0),                # no pairs
        ]
        intervals = [(0.0, 300.0), (200.0, 300.0), (0.0, 100.0)]
        fleet = ReplicaSetResult(replicas=replicas,
                                 replica_intervals=intervals)
        # The pairless replica carries no weight; the joiner's perfect
        # waves weigh 100 seconds against the veteran's 300.
        expected = (math.log(2.0) * 300.0 + 0.0 * 100.0) / 400.0
        assert fleet.fleet_calibration_error() == pytest.approx(expected)

    def test_fleet_calibration_error_none_without_pairs(self):
        fleet = ReplicaSetResult(replicas=[OrchestratorResult(makespan=1.0)])
        assert fleet.fleet_calibration_error() is None

    def test_mean_reclaim_latency(self):
        base = dict(replicas=[OrchestratorResult(makespan=1.0)])
        assert ReplicaSetResult(**base).mean_reclaim_latency() is None
        taken = ReplicaSetResult(**base, reclaim_latencies=[0.2, 0.4])
        assert taken.mean_reclaim_latency() == pytest.approx(0.3)
