"""Regression pin for the ROADMAP fill-vs-interleave defect (PR 9).

``knapsack_groups`` bins jobs first-fit-decreasing by padded per-step
token mass, optimizing *per-group* bin fill.  When the live set's masses
do not tile the capacity -- e.g. every mass lands near 60% of a
microbatch -- no two jobs fit one bin, FFD degenerates to all-singleton
groups, and the scheme forfeits exactly the cross-adapter interleaving
head-tail grouping exists to exploit: fleet ``pack_efficiency`` drops
*below* the arrival/head-tail baseline the knapsack scheme is supposed
to beat.

The first test pins the degenerate layout itself (it passes -- that part
is just arithmetic).  The second asserts the behavior we *want* -- the
knapsack scheme should never lose to the baseline on pack efficiency --
and is a strict ``xfail`` until the assembler grows the joint objective
the ROADMAP sketches (penalize fewer-than-``num_stages`` groups, reward
cross-group fill variance reduction).
"""

import math

import pytest

from repro.data import FinetuneDataset, Sample
from repro.gpu import H100
from repro.models.config import LLAMA3_8B
from repro.models.layer_costs import LayerCostModel
from repro.scheduler import AdapterJob, SchedulerConfig
from repro.scheduler.grouping import knapsack_groups
from repro.serve import ServeConfig, ServeJob

COST = LayerCostModel(LLAMA3_8B, H100, strategy="fused_multi")
CAPACITY = 8192
PADDING = 64
#: Per-sample length chosen so one global batch's padded mass lands at
#: ~60% of capacity: 4 x 1228 = 4912 tokens, padded to 4928 = 60.2% of
#: 8192 -- two such masses cannot share a bin.
LENGTH = 1228
GBS = 4
NUM_JOBS = 6


def awkward_job(adapter_id, num_samples=8):
    samples = [
        Sample(adapter_id=adapter_id, index=i, length=LENGTH)
        for i in range(num_samples)
    ]
    return AdapterJob(
        adapter_id, FinetuneDataset(adapter_id, samples), GBS
    )


def step_mass(job):
    per_step = job.mean_length() * min(job.global_batch_size, len(job.dataset))
    return math.ceil(per_step / PADDING) * PADDING


def run_fleet(packing):
    config = ServeConfig(
        num_replicas=1, slots=NUM_JOBS, window_batches=1, packing=packing
    )
    executors, fleet_config = config.build(
        COST, SchedulerConfig(capacity=CAPACITY, num_stages=2, use_milp=False)
    )
    from repro.serve import ReplicaSet

    arrivals = [
        ServeJob(job=awkward_job(a), arrival_time=0.0)
        for a in range(NUM_JOBS)
    ]
    return ReplicaSet(executors, fleet_config).run(arrivals)


class TestDegenerateLayout:
    def test_untileable_masses_collapse_to_singleton_groups(self):
        # The defect's precondition, pinned: every mass sits just above
        # half capacity, so FFD can never pair jobs and every group is a
        # singleton filled to ~60%.
        jobs = [awkward_job(a) for a in range(NUM_JOBS)]
        for job in jobs:
            fill = step_mass(job) / CAPACITY
            assert CAPACITY / 2 < step_mass(job)
            assert 0.55 < fill < 0.65
        groups = knapsack_groups(jobs, CAPACITY, PADDING)
        assert len(groups) == NUM_JOBS
        assert all(len(group) == 1 for group in groups)


class TestFillVsInterleave:
    @pytest.mark.xfail(
        reason="ROADMAP fill-vs-interleave defect: capacity-greedy FFD "
        "emits ~60%-full singleton groups on untileable masses, losing "
        "the interleaving the head-tail baseline gets for free; needs "
        "the joint fill+interleave objective",
        strict=True,
    )
    def test_knapsack_never_loses_pack_efficiency_to_baseline(self):
        baseline = run_fleet("arrival")
        knapsack = run_fleet("knapsack")
        assert baseline.pack_efficiency() > 0.0
        assert knapsack.pack_efficiency() >= baseline.pack_efficiency()
