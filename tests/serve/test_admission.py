"""Tests for admission control."""

import pytest

from repro.errors import ScheduleError
from repro.gpu import H100, L40S
from repro.models.config import LLAMA3_70B, LLAMA3_8B
from repro.serve import (
    AdmissionPolicy,
    DeadlineFeasibilityAdmission,
    JobView,
    MemoryAdmission,
    SlotAdmission,
)


def gate_view(deadline=None, remaining_seconds=None):
    return JobView(
        adapter_id=0,
        arrival_time=0.0,
        priority=0,
        deadline=deadline,
        remaining_batches=4,
        admitted=False,
        remaining_seconds=remaining_seconds,
    )


class TestSlotAdmission:
    def test_fixed_budget(self):
        assert SlotAdmission(3).max_concurrent() == 3

    def test_rejects_non_positive(self):
        with pytest.raises(ScheduleError):
            SlotAdmission(0)

    def test_satisfies_protocol(self):
        assert isinstance(SlotAdmission(1), AdmissionPolicy)


class TestMemoryAdmission:
    def test_slots_match_memory_model(self):
        policy = MemoryAdmission(LLAMA3_8B, H100, capacity=8192, num_stages=1)
        slots = policy.max_concurrent()
        assert slots >= 1
        assert policy.fits(slots)
        assert slots == 256 or not policy.fits(slots + 1)

    def test_smaller_gpu_admits_fewer(self):
        big = MemoryAdmission(LLAMA3_8B, H100, capacity=4096)
        small = MemoryAdmission(LLAMA3_8B, L40S, capacity=4096)
        assert small.max_concurrent() < big.max_concurrent()

    def test_infeasible_configuration_raises(self):
        # A 70B model on one 48GB GPU cannot host even a single adapter.
        policy = MemoryAdmission(LLAMA3_70B, L40S, capacity=8192)
        with pytest.raises(ScheduleError, match="does not fit"):
            policy.max_concurrent()

    def test_satisfies_protocol(self):
        policy = MemoryAdmission(LLAMA3_8B, H100, capacity=4096)
        assert isinstance(policy, AdmissionPolicy)


class TestDeadlineFeasibilityAdmission:
    def test_delegates_slot_budget_to_inner_policy(self):
        gate = DeadlineFeasibilityAdmission(SlotAdmission(3))
        assert gate.max_concurrent() == 3
        assert isinstance(gate, AdmissionPolicy)

    def test_infeasible_deadline_is_shed(self):
        gate = DeadlineFeasibilityAdmission(SlotAdmission(1))
        # 5 seconds of work, 2 seconds to the deadline: doomed.
        assert not gate.feasible(gate_view(deadline=2.0, remaining_seconds=5.0),
                                 now=0.0)
        # Same job, generous deadline: feasible.
        assert gate.feasible(gate_view(deadline=9.0, remaining_seconds=5.0),
                             now=0.0)

    def test_feasibility_decays_while_queueing(self):
        gate = DeadlineFeasibilityAdmission(SlotAdmission(1))
        view = gate_view(deadline=6.0, remaining_seconds=5.0)
        assert gate.feasible(view, now=1.0)
        assert not gate.feasible(view, now=1.5)

    def test_never_sheds_what_it_cannot_measure(self):
        gate = DeadlineFeasibilityAdmission(SlotAdmission(1))
        # No deadline, or no estimate: always feasible.
        assert gate.feasible(gate_view(deadline=None, remaining_seconds=99.0),
                             now=0.0)
        assert gate.feasible(gate_view(deadline=0.1, remaining_seconds=None),
                             now=0.0)

    def test_slack_sheds_earlier(self):
        lax = DeadlineFeasibilityAdmission(SlotAdmission(1), slack=1.0)
        strict = DeadlineFeasibilityAdmission(SlotAdmission(1), slack=2.0)
        view = gate_view(deadline=8.0, remaining_seconds=5.0)
        assert lax.feasible(view, now=0.0)
        assert not strict.feasible(view, now=0.0)

    def test_rejects_non_positive_slack(self):
        with pytest.raises(ScheduleError, match="slack"):
            DeadlineFeasibilityAdmission(SlotAdmission(1), slack=0.0)


class TestQueueingAwareAdmission:
    def test_backlog_ignored_by_default(self):
        gate = DeadlineFeasibilityAdmission(SlotAdmission(1))
        view = gate_view(deadline=6.0, remaining_seconds=5.0)
        # Service-only optimism: the job fits without the queue, so a
        # huge backlog changes nothing unless queueing_aware is on.
        assert gate.feasible(view, now=0.0, backlog=100.0)

    def test_backlog_charged_when_queueing_aware(self):
        gate = DeadlineFeasibilityAdmission(
            SlotAdmission(1), queueing_aware=True
        )
        view = gate_view(deadline=6.0, remaining_seconds=5.0)
        assert gate.feasible(view, now=0.0, backlog=1.0)
        assert not gate.feasible(view, now=0.0, backlog=1.5)

    def test_slack_scales_the_estimate_not_the_backlog(self):
        gate = DeadlineFeasibilityAdmission(
            SlotAdmission(1), slack=2.0, queueing_aware=True
        )
        # 2 * 2.0 estimate + 1.5 backlog = 5.5 <= 6.0: feasible; a
        # slack that also scaled the backlog (2 * 1.5) would shed it.
        assert gate.feasible(
            gate_view(deadline=6.0, remaining_seconds=2.0),
            now=0.0, backlog=1.5,
        )
        assert not gate.feasible(
            gate_view(deadline=6.0, remaining_seconds=2.3),
            now=0.0, backlog=1.5,
        )

    def test_unmeasurable_candidates_still_pass(self):
        gate = DeadlineFeasibilityAdmission(
            SlotAdmission(1), queueing_aware=True
        )
        assert gate.feasible(
            gate_view(deadline=0.1, remaining_seconds=None),
            now=0.0, backlog=50.0,
        )


class TestQueueingAwareOrchestration:
    """End-to-end: the backlog-charging gate sheds a doomed-under-load
    arrival that the service-only gate admits (and then serves late)."""

    @staticmethod
    def serve(queueing_aware):
        from repro.data import synthetic_dataset
        from repro.gpu import H100 as GPU
        from repro.models.layer_costs import LayerCostModel
        from repro.scheduler import AdapterJob, SchedulerConfig
        from repro.serve import (
            CostEstimator,
            DeadlineOrdering,
            OnlineOrchestrator,
            OrchestratorConfig,
            ServeJob,
            StreamingSimExecutor,
        )

        num_stages = 2
        cost = LayerCostModel(LLAMA3_8B, GPU, strategy="fused_multi")
        sched = SchedulerConfig(capacity=8192, num_stages=num_stages,
                                use_milp=False)
        estimator = CostEstimator.for_scheduler(cost, sched)
        light = AdapterJob(2, synthetic_dataset(2, "xsum", 32, seed=3), 8)
        workload = [
            # Two deadline-free heavy residents hold the pipeline, so
            # the wave backlog ahead of any later arrival is large.
            ServeJob(
                job=AdapterJob(
                    a, synthetic_dataset(a, "wikisum", 32, seed=3), 8
                ),
                arrival_time=0.0,
            )
            for a in range(2)
        ] + [
            # Arrives mid-run; its deadline comfortably fits its solo
            # service time (the service-only gate admits it at the next
            # wave boundary) but not the residents' planned backlog
            # (the queueing-aware gate sheds it there instead).
            ServeJob(job=light, arrival_time=0.01,
                     deadline=0.01 + 4.0 * estimator.job_seconds(light)),
        ]
        config = OrchestratorConfig(
            scheduler=sched,
            window_batches=1,
            admission=DeadlineFeasibilityAdmission(
                SlotAdmission(3), queueing_aware=queueing_aware
            ),
            ordering=DeadlineOrdering(),
            estimator=estimator,
        )
        orchestrator = OnlineOrchestrator(
            StreamingSimExecutor(cost, num_stages), config
        )
        result = orchestrator.run(workload)
        assert result.violations == 0
        return result

    def test_queueing_aware_sheds_what_service_only_serves_late(self):
        service = self.serve(queueing_aware=False)
        queueing = self.serve(queueing_aware=True)
        assert service.rejected == 0
        assert service.records[2].deadline_missed is True
        assert queueing.rejected == 1
        assert queueing.records[2].rejected_time is not None
