"""Tests for admission control."""

import pytest

from repro.errors import ScheduleError
from repro.gpu import H100, L40S
from repro.models.config import LLAMA3_70B, LLAMA3_8B
from repro.serve import (
    AdmissionPolicy,
    DeadlineFeasibilityAdmission,
    JobView,
    MemoryAdmission,
    SlotAdmission,
)


def gate_view(deadline=None, remaining_seconds=None):
    return JobView(
        adapter_id=0,
        arrival_time=0.0,
        priority=0,
        deadline=deadline,
        remaining_batches=4,
        admitted=False,
        remaining_seconds=remaining_seconds,
    )


class TestSlotAdmission:
    def test_fixed_budget(self):
        assert SlotAdmission(3).max_concurrent() == 3

    def test_rejects_non_positive(self):
        with pytest.raises(ScheduleError):
            SlotAdmission(0)

    def test_satisfies_protocol(self):
        assert isinstance(SlotAdmission(1), AdmissionPolicy)


class TestMemoryAdmission:
    def test_slots_match_memory_model(self):
        policy = MemoryAdmission(LLAMA3_8B, H100, capacity=8192, num_stages=1)
        slots = policy.max_concurrent()
        assert slots >= 1
        assert policy.fits(slots)
        assert slots == 256 or not policy.fits(slots + 1)

    def test_smaller_gpu_admits_fewer(self):
        big = MemoryAdmission(LLAMA3_8B, H100, capacity=4096)
        small = MemoryAdmission(LLAMA3_8B, L40S, capacity=4096)
        assert small.max_concurrent() < big.max_concurrent()

    def test_infeasible_configuration_raises(self):
        # A 70B model on one 48GB GPU cannot host even a single adapter.
        policy = MemoryAdmission(LLAMA3_70B, L40S, capacity=8192)
        with pytest.raises(ScheduleError, match="does not fit"):
            policy.max_concurrent()

    def test_satisfies_protocol(self):
        policy = MemoryAdmission(LLAMA3_8B, H100, capacity=4096)
        assert isinstance(policy, AdmissionPolicy)


class TestDeadlineFeasibilityAdmission:
    def test_delegates_slot_budget_to_inner_policy(self):
        gate = DeadlineFeasibilityAdmission(SlotAdmission(3))
        assert gate.max_concurrent() == 3
        assert isinstance(gate, AdmissionPolicy)

    def test_infeasible_deadline_is_shed(self):
        gate = DeadlineFeasibilityAdmission(SlotAdmission(1))
        # 5 seconds of work, 2 seconds to the deadline: doomed.
        assert not gate.feasible(gate_view(deadline=2.0, remaining_seconds=5.0),
                                 now=0.0)
        # Same job, generous deadline: feasible.
        assert gate.feasible(gate_view(deadline=9.0, remaining_seconds=5.0),
                             now=0.0)

    def test_feasibility_decays_while_queueing(self):
        gate = DeadlineFeasibilityAdmission(SlotAdmission(1))
        view = gate_view(deadline=6.0, remaining_seconds=5.0)
        assert gate.feasible(view, now=1.0)
        assert not gate.feasible(view, now=1.5)

    def test_never_sheds_what_it_cannot_measure(self):
        gate = DeadlineFeasibilityAdmission(SlotAdmission(1))
        # No deadline, or no estimate: always feasible.
        assert gate.feasible(gate_view(deadline=None, remaining_seconds=99.0),
                             now=0.0)
        assert gate.feasible(gate_view(deadline=0.1, remaining_seconds=None),
                             now=0.0)

    def test_slack_sheds_earlier(self):
        lax = DeadlineFeasibilityAdmission(SlotAdmission(1), slack=1.0)
        strict = DeadlineFeasibilityAdmission(SlotAdmission(1), slack=2.0)
        view = gate_view(deadline=8.0, remaining_seconds=5.0)
        assert lax.feasible(view, now=0.0)
        assert not strict.feasible(view, now=0.0)

    def test_rejects_non_positive_slack(self):
        with pytest.raises(ScheduleError, match="slack"):
            DeadlineFeasibilityAdmission(SlotAdmission(1), slack=0.0)
