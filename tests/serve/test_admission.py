"""Tests for admission control."""

import pytest

from repro.errors import ScheduleError
from repro.gpu import H100, L40S
from repro.models.config import LLAMA3_70B, LLAMA3_8B
from repro.serve import AdmissionPolicy, MemoryAdmission, SlotAdmission


class TestSlotAdmission:
    def test_fixed_budget(self):
        assert SlotAdmission(3).max_concurrent() == 3

    def test_rejects_non_positive(self):
        with pytest.raises(ScheduleError):
            SlotAdmission(0)

    def test_satisfies_protocol(self):
        assert isinstance(SlotAdmission(1), AdmissionPolicy)


class TestMemoryAdmission:
    def test_slots_match_memory_model(self):
        policy = MemoryAdmission(LLAMA3_8B, H100, capacity=8192, num_stages=1)
        slots = policy.max_concurrent()
        assert slots >= 1
        assert policy.fits(slots)
        assert slots == 256 or not policy.fits(slots + 1)

    def test_smaller_gpu_admits_fewer(self):
        big = MemoryAdmission(LLAMA3_8B, H100, capacity=4096)
        small = MemoryAdmission(LLAMA3_8B, L40S, capacity=4096)
        assert small.max_concurrent() < big.max_concurrent()

    def test_infeasible_configuration_raises(self):
        # A 70B model on one 48GB GPU cannot host even a single adapter.
        policy = MemoryAdmission(LLAMA3_70B, L40S, capacity=8192)
        with pytest.raises(ScheduleError, match="does not fit"):
            policy.max_concurrent()

    def test_satisfies_protocol(self):
        policy = MemoryAdmission(LLAMA3_8B, H100, capacity=4096)
        assert isinstance(policy, AdmissionPolicy)
