"""Tests for the online orchestrator's serving loop."""

import pytest

from repro.data import synthetic_dataset
from repro.errors import ScheduleError
from repro.gpu import H100
from repro.models.config import LLAMA3_8B
from repro.models.layer_costs import LayerCostModel
from repro.scheduler import (
    AdapterJob,
    MultiLoRAScheduler,
    Schedule,
    SchedulerConfig,
    find_violations,
)
from repro.serve import (
    OnlineOrchestrator,
    OrchestratorConfig,
    ServeJob,
    SlotAdmission,
    StreamingSimExecutor,
)

DATASETS = ["xsum", "cnn_dailymail", "wikisum", "mixed"]


def make_jobs(count, samples=16, gbs=8, seed=3):
    return [
        AdapterJob(a, synthetic_dataset(a, DATASETS[a % 4], samples, seed=seed),
                   gbs)
        for a in range(count)
    ]


def make_orchestrator(num_stages=2, window=1, slots=None, **scheduler_overrides):
    settings = dict(capacity=8192, num_stages=num_stages, use_milp=False)
    settings.update(scheduler_overrides)
    config = OrchestratorConfig(
        scheduler=SchedulerConfig(**settings),
        window_batches=window,
        admission=SlotAdmission(slots) if slots else None,
    )
    cost = LayerCostModel(LLAMA3_8B, H100, strategy="fused_multi")
    executor = StreamingSimExecutor(cost, num_stages)
    return OnlineOrchestrator(executor, config)


class TestServingLoop:
    def test_all_jobs_complete_with_zero_violations(self):
        jobs = make_jobs(4)
        workload = [
            ServeJob(job=job, arrival_time=0.25 * i)
            for i, job in enumerate(jobs)
        ]
        orchestrator = make_orchestrator(num_stages=2, window=1)
        result = orchestrator.run(workload)
        assert result.violations == 0
        assert find_violations(orchestrator.stream, 2) == []
        for job in jobs:
            record = result.records[job.adapter_id]
            assert record.finish_time is not None
            assert record.completion_time > 0
            assert record.num_batches == job.num_global_batches()

    def test_every_sample_scheduled_exactly_once_under_churn(self):
        jobs = make_jobs(5, samples=20, gbs=5)
        workload = [
            ServeJob(job=job, arrival_time=float(i))
            for i, job in enumerate(jobs)
        ]
        orchestrator = make_orchestrator(num_stages=4, window=2, slots=3)
        orchestrator.run(workload)
        for job in jobs:
            seen = sorted(
                a.sample.index
                for mb in orchestrator.stream
                for a in mb.assignments
                if a.adapter_id == job.adapter_id
            )
            assert seen == list(range(len(job.dataset)))

    def test_batch_order_preserved_per_job(self):
        jobs = make_jobs(3, samples=12, gbs=4)
        workload = [
            ServeJob(job=job, arrival_time=0.5 * i)
            for i, job in enumerate(jobs)
        ]
        orchestrator = make_orchestrator(num_stages=2, window=1)
        orchestrator.run(workload)
        schedule = orchestrator.stream_schedule()
        for job in jobs:
            batches = [b for b, _ in schedule.adapter_sample_order(job.adapter_id)]
            assert batches == sorted(batches)
            assert batches[-1] == job.num_global_batches() - 1

    def test_slot_budget_respected(self):
        jobs = make_jobs(6, samples=8, gbs=4)
        workload = [ServeJob(job=job, arrival_time=0.0) for job in jobs]
        orchestrator = make_orchestrator(num_stages=2, window=1, slots=2)

        max_active = 0
        original = orchestrator._plan_wave

        def tracking_plan():
            nonlocal max_active
            max_active = max(max_active, len(orchestrator._active))
            return original()

        orchestrator._plan_wave = tracking_plan
        result = orchestrator.run(workload)
        assert max_active <= 2
        assert all(r.finish_time is not None for r in result.records.values())
        # Later jobs queued for a slot.
        assert result.mean_queueing_delay() > 0

    def test_queueing_metrics_monotone_with_fewer_slots(self):
        jobs = make_jobs(6, samples=8, gbs=4)
        workload = [ServeJob(job=job, arrival_time=0.0) for job in jobs]
        tight = make_orchestrator(num_stages=2, window=1, slots=1).run(workload)
        loose = make_orchestrator(num_stages=2, window=1, slots=6).run(workload)
        assert tight.mean_queueing_delay() >= loose.mean_queueing_delay()
        assert loose.mean_queueing_delay() == 0.0

    def test_idle_gap_fast_forwards_clock(self):
        jobs = make_jobs(2, samples=8, gbs=4)
        workload = [
            ServeJob(job=jobs[0], arrival_time=0.0),
            ServeJob(job=jobs[1], arrival_time=1000.0),
        ]
        result = make_orchestrator(num_stages=2, window=2).run(workload)
        assert result.makespan >= 1000.0
        record = result.records[1]
        assert record.admit_time == pytest.approx(1000.0)

    def test_oracle_mode_matches_offline_schedule(self):
        # All jobs at t=0 with an unbounded window is the offline oracle:
        # one wave, and the stream equals the offline scheduler's output.
        jobs = make_jobs(4)
        workload = [ServeJob(job=job, arrival_time=0.0) for job in jobs]
        orchestrator = make_orchestrator(num_stages=2, window=None)
        result = orchestrator.run(workload)
        offline = MultiLoRAScheduler(
            jobs, SchedulerConfig(capacity=8192, num_stages=2, use_milp=False)
        ).schedule()
        assert result.replans == 1
        key = lambda mb: sorted(
            (a.adapter_id, a.sample.index, a.global_batch)
            for a in mb.assignments
        )
        assert [key(mb) for mb in orchestrator.stream] == [
            key(mb) for mb in offline.microbatches
        ]

    def test_run_is_single_shot(self):
        jobs = make_jobs(2, samples=8, gbs=4)
        workload = [ServeJob(job=job, arrival_time=0.0) for job in jobs]
        orchestrator = make_orchestrator(num_stages=2, window=1)
        orchestrator.run(workload)
        with pytest.raises(ScheduleError, match="single-shot"):
            orchestrator.run(workload)

    def test_duplicate_adapter_ids_rejected(self):
        job = make_jobs(1)[0]
        workload = [
            ServeJob(job=job, arrival_time=0.0),
            ServeJob(job=job, arrival_time=1.0),
        ]
        with pytest.raises(ScheduleError, match="duplicate"):
            make_orchestrator().run(workload)

    def test_stream_schedule_round_trips_through_json(self):
        jobs = make_jobs(3, samples=8, gbs=4)
        workload = [
            ServeJob(job=job, arrival_time=0.1 * i)
            for i, job in enumerate(jobs)
        ]
        orchestrator = make_orchestrator(num_stages=2, window=1)
        orchestrator.run(workload)
        schedule = orchestrator.stream_schedule()
        rebuilt = Schedule.from_dict(schedule.to_dict())
        assert len(rebuilt) == len(schedule)
        assert [mb.plan_id for mb in rebuilt.microbatches] == [
            mb.plan_id for mb in schedule.microbatches
        ]
        assert find_violations(rebuilt.microbatches, 2) == []

    def test_inject_without_free_slot_rejected(self):
        # The admission budget holds across migration: a state-carrying
        # ticket cannot land on a replica whose slots are all taken.
        jobs = make_jobs(2, samples=8, gbs=4)
        source = make_orchestrator(num_stages=1, window=1, slots=1)
        source.start([ServeJob(job=jobs[0], arrival_time=0.0)])
        source.step()  # admit + first wave: job 0 active, at a boundary
        ticket = source.eject_job(0)
        assert ticket.payload is not None
        target = make_orchestrator(num_stages=1, window=1, slots=1)
        target.start([ServeJob(job=jobs[1], arrival_time=0.0)])
        target.step()  # job 1 occupies the only slot
        with pytest.raises(ScheduleError, match="no free adapter slot"):
            target.inject_job(ticket)

    def test_plan_ids_trace_replanning_waves(self):
        jobs = make_jobs(3, samples=12, gbs=4)
        workload = [
            ServeJob(job=job, arrival_time=0.2 * i)
            for i, job in enumerate(jobs)
        ]
        orchestrator = make_orchestrator(num_stages=2, window=1)
        result = orchestrator.run(workload)
        plan_ids = [mb.plan_id for mb in orchestrator.stream]
        assert plan_ids == sorted(plan_ids)
        assert len(set(plan_ids)) == result.replans


class TestAdaptiveWindow:
    @staticmethod
    def run_adaptive(workload, adaptive, slots=None, window=1):
        from repro.serve import CostEstimator

        scheduler = SchedulerConfig(capacity=8192, num_stages=2,
                                    use_milp=False)
        cost = LayerCostModel(LLAMA3_8B, H100, strategy="fused_multi")
        config = OrchestratorConfig(
            scheduler=scheduler,
            window_batches=window,
            admission=SlotAdmission(slots) if slots else None,
            estimator=CostEstimator.for_scheduler(cost, scheduler),
            adaptive_window=adaptive,
        )
        orchestrator = OnlineOrchestrator(StreamingSimExecutor(cost, 2),
                                          config)
        return orchestrator, orchestrator.run(workload)

    def test_window_grows_while_tenant_set_is_stable(self):
        from repro.serve import AdaptiveWindowConfig

        # One long job, no churn after admission: the window should walk
        # up to the ceiling.
        workload = [ServeJob(job=make_jobs(1, samples=96)[0],
                             arrival_time=0.0)]
        orchestrator, result = self.run_adaptive(
            workload, AdaptiveWindowConfig(min_batches=1, max_batches=4)
        )
        assert result.violations == 0
        assert orchestrator.current_window == 4
        # Fewer replans than the static window=1 run would need (12
        # batches, one per wave).
        assert result.replans < 12

    def test_window_shrinks_under_churn(self):
        from repro.serve import AdaptiveWindowConfig

        # A steady drip of short tenants: every wave sees churn, so the
        # window must stay at the floor.
        jobs = make_jobs(6, samples=8)
        workload = [ServeJob(job=job, arrival_time=0.3 * a)
                    for a, job in enumerate(jobs)]
        orchestrator, result = self.run_adaptive(
            workload, AdaptiveWindowConfig(min_batches=1, max_batches=8),
            slots=2,
        )
        assert result.violations == 0
        assert orchestrator.current_window <= 2

    def test_target_wave_seconds_caps_the_window(self):
        from repro.serve import AdaptiveWindowConfig

        workload = [ServeJob(job=make_jobs(1, samples=96)[0],
                             arrival_time=0.0)]
        tight = AdaptiveWindowConfig(min_batches=1, max_batches=8,
                                     target_wave_seconds=1e-6)
        orchestrator, result = self.run_adaptive(workload, tight)
        assert result.violations == 0
        # No wave may exceed the (unsatisfiable) budget by more than the
        # floor window, so the window never leaves the floor.
        assert orchestrator.current_window == 1

    def test_adaptive_window_requires_finite_start(self):
        from repro.serve import AdaptiveWindowConfig

        with pytest.raises(ScheduleError, match="window_batches"):
            OrchestratorConfig(
                scheduler=SchedulerConfig(capacity=8192, use_milp=False),
                window_batches=None,
                adaptive_window=AdaptiveWindowConfig(),
            )

    def test_target_requires_estimator(self):
        from repro.serve import AdaptiveWindowConfig

        with pytest.raises(ScheduleError, match="estimator"):
            OrchestratorConfig(
                scheduler=SchedulerConfig(capacity=8192, use_milp=False),
                window_batches=1,
                adaptive_window=AdaptiveWindowConfig(target_wave_seconds=1.0),
            )

    def test_degenerate_bounds_rejected(self):
        from repro.serve import AdaptiveWindowConfig

        with pytest.raises(ScheduleError):
            AdaptiveWindowConfig(min_batches=0)
        with pytest.raises(ScheduleError):
            AdaptiveWindowConfig(min_batches=4, max_batches=2)


class TestDeadlineShedding:
    @staticmethod
    def serve_gated(workload, slack=1.0, slots=2, ordering=None):
        from repro.serve import CostEstimator, DeadlineFeasibilityAdmission
        from repro.serve.ordering import DeadlineOrdering

        scheduler = SchedulerConfig(capacity=8192, num_stages=2,
                                    use_milp=False)
        cost = LayerCostModel(LLAMA3_8B, H100, strategy="fused_multi")
        config = OrchestratorConfig(
            scheduler=scheduler,
            window_batches=1,
            admission=DeadlineFeasibilityAdmission(SlotAdmission(slots),
                                                   slack=slack),
            ordering=ordering or DeadlineOrdering(),
            estimator=CostEstimator.for_scheduler(cost, scheduler),
        )
        orchestrator = OnlineOrchestrator(StreamingSimExecutor(cost, 2),
                                          config)
        return orchestrator.run(workload)

    def test_doomed_arrival_is_rejected_terminally(self):
        from repro.serve import JobOutcome

        jobs = make_jobs(2, samples=16)
        workload = [
            # An impossible deadline: rejected on arrival.
            ServeJob(job=jobs[0], arrival_time=0.0, deadline=1e-9),
            # A generous one: served normally.
            ServeJob(job=jobs[1], arrival_time=0.0, deadline=1e9),
        ]
        result = self.serve_gated(workload)
        assert result.rejected == 1
        rejected = result.records[0]
        assert rejected.outcome is JobOutcome.REJECTED
        assert rejected.rejected_time == 0.0
        assert rejected.admit_time is None and rejected.finish_time is None
        served = result.records[1]
        assert served.outcome is JobOutcome.FINISHED
        # The shed job counts in the strict miss rate but not the
        # served-only one.
        assert result.deadline_miss_rate() == 0.5
        assert result.served_deadline_miss_rate() == 0.0
        assert result.rejections() == 1

    def test_gate_requires_estimator(self):
        from repro.serve import DeadlineFeasibilityAdmission

        with pytest.raises(ScheduleError, match="estimator"):
            OrchestratorConfig(
                scheduler=SchedulerConfig(capacity=8192, use_milp=False),
                admission=DeadlineFeasibilityAdmission(SlotAdmission(1)),
            )

    def test_job_turning_infeasible_while_queueing_is_shed(self):
        from repro.serve.ordering import FCFSOrdering

        jobs = make_jobs(3, samples=24)
        workload = [
            # Fills the single slot for a while (~0.4s of service).
            ServeJob(job=jobs[0], arrival_time=0.0),
            # Feasible at arrival (own service ~0.55s < 0.7s budget) but
            # the deadline decays while it queues behind job 0 under
            # FCFS -- the gate re-prices it every admission pass and
            # sheds it mid-queue.
            ServeJob(job=jobs[1], arrival_time=0.0, deadline=0.7),
            ServeJob(job=jobs[2], arrival_time=0.0),
        ]
        result = self.serve_gated(workload, slots=1, ordering=FCFSOrdering())
        record = result.records[1]
        assert record.rejected_time is not None
        assert record.rejected_time > 0.0  # shed in queue, not at arrival
        assert record.finish_time is None
        # Everyone else completes.
        assert result.records[0].finish_time is not None
        assert result.records[2].finish_time is not None
