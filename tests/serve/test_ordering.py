"""Tests for the slot-candidate ordering policies."""

import pytest

from repro.errors import ScheduleError
from repro.serve import (
    DeadlineOrdering,
    FCFSOrdering,
    JobView,
    OrderingPolicy,
    PriorityOrdering,
    ServeJob,
    SRPTOrdering,
)
from repro.serve.ordering import validate_policy


def view(aid, arrival=0.0, priority=0, deadline=None, remaining=4,
         admitted=False, remaining_seconds=None):
    return JobView(
        adapter_id=aid,
        arrival_time=arrival,
        priority=priority,
        deadline=deadline,
        remaining_batches=remaining,
        admitted=admitted,
        remaining_seconds=remaining_seconds,
    )


def ranked(policy, views, now=0.0):
    return [v.adapter_id for v in sorted(views, key=lambda v: policy.key(v, now))]


class TestFCFS:
    def test_ranks_by_arrival(self):
        views = [view(0, arrival=2.0), view(1, arrival=0.5), view(2, arrival=1.0)]
        assert ranked(FCFSOrdering(), views) == [1, 2, 0]

    def test_adapter_id_breaks_ties(self):
        views = [view(3, arrival=1.0), view(1, arrival=1.0)]
        assert ranked(FCFSOrdering(), views) == [1, 3]

    def test_never_preemptive(self):
        assert FCFSOrdering().preemptive is False


class TestSRPT:
    def test_ranks_by_remaining_batches(self):
        views = [view(0, remaining=9), view(1, remaining=1), view(2, remaining=4)]
        assert ranked(SRPTOrdering(), views) == [1, 2, 0]

    def test_banked_progress_counts(self):
        # A preempted job with 2 of 10 batches left outranks a fresh
        # 5-batch arrival: SRPT is remaining work, not total size.
        views = [view(0, remaining=5), view(1, remaining=2)]
        assert ranked(SRPTOrdering(), views) == [1, 0]

    def test_arrival_breaks_ties(self):
        views = [view(0, arrival=1.0, remaining=3), view(1, arrival=0.0, remaining=3)]
        assert ranked(SRPTOrdering(), views) == [1, 0]

    def test_preemption_is_opt_in(self):
        assert SRPTOrdering().preemptive is False
        assert SRPTOrdering(preemptive=True).preemptive is True

    def test_ranks_by_seconds_when_priced(self):
        # Remaining *time* beats remaining batch counts: fewer batches
        # can be more work.
        views = [
            view(0, remaining=2, remaining_seconds=9.0),
            view(1, remaining=8, remaining_seconds=1.0),
        ]
        assert ranked(SRPTOrdering(), views) == [1, 0]


class TestAging:
    """The starvation bound: rank improves linearly with queueing time.

    With aging rate ``r``, a job with remaining work ``R`` that has
    waited ``W`` has effective work ``R - r*W``, so it outranks any
    fresh arrival with remaining work ``s`` once ``W > (R - s) / r`` --
    the worst-case queueing bound (ROADMAP "aging / starvation bounds").
    """

    def test_aged_long_job_overtakes_fresh_short_job(self):
        policy = SRPTOrdering(aging_rate=1.0)
        long_job = view(0, arrival=0.0, remaining=10)
        short_job = view(1, arrival=9.5, remaining=1)
        # Bound: W > (R - s) / r = (10 - 1) / 1 = 9.  At now=9.5 the
        # long job has waited 9.5 > 9 while the short one is fresh.
        assert ranked(policy, [long_job, short_job], now=9.5) == [0, 1]
        # Before the bound the short job still wins.
        short_early = view(1, arrival=5.0, remaining=1)
        assert ranked(policy, [long_job, short_early], now=5.0) == [1, 0]

    def test_worst_case_queueing_bound_holds_for_any_wait(self):
        # Property: once W exceeds (R - s) / r the long job ranks first,
        # for a grid of (R, s, W) combinations.
        rate = 0.5
        policy = SRPTOrdering(aging_rate=rate)
        for big in (4, 16, 64):
            for small in (1, 2):
                bound = (big - small) / rate
                now = bound + 1.0
                long_job = view(0, arrival=0.0, remaining=big)
                fresh = view(1, arrival=now, remaining=small)
                key_long = policy.key(long_job, now)
                key_fresh = policy.key(fresh, now)
                assert key_long < key_fresh

    def test_jobs_waiting_together_age_together(self):
        # Aging cancels between two candidates of equal age: the SRPT
        # order among them is unchanged.
        policy = SRPTOrdering(aging_rate=3.0)
        views = [view(0, remaining=9), view(1, remaining=1), view(2, remaining=4)]
        assert ranked(policy, views, now=100.0) == [1, 2, 0]

    def test_priority_aging_promotes_waiting_best_effort(self):
        policy = PriorityOrdering(aging_rate=0.1)
        best_effort = view(0, arrival=0.0, priority=0)
        high = view(1, arrival=25.0, priority=2)
        # Bound: W > c / r = 2 / 0.1 = 20 -> at now=25 the best-effort
        # job's effective class (2.5) beats the fresh high class (2).
        assert ranked(policy, [best_effort, high], now=25.0) == [0, 1]
        assert ranked(policy, [view(0, arrival=15.0, priority=0), high],
                      now=25.0) == [1, 0]

    def test_negative_aging_rate_rejected(self):
        for cls in (SRPTOrdering, PriorityOrdering, DeadlineOrdering):
            with pytest.raises(ScheduleError, match="aging_rate"):
                cls(aging_rate=-0.5)


class TestPriority:
    def test_higher_class_first(self):
        views = [view(0, priority=0), view(1, priority=2), view(2, priority=1)]
        assert ranked(PriorityOrdering(), views) == [1, 2, 0]

    def test_fcfs_within_class(self):
        views = [
            view(0, arrival=2.0, priority=1),
            view(1, arrival=1.0, priority=1),
        ]
        assert ranked(PriorityOrdering(), views) == [1, 0]

    def test_preemptive_by_default(self):
        assert PriorityOrdering().preemptive is True


class TestDeadline:
    def test_earliest_deadline_first(self):
        views = [view(0, deadline=9.0), view(1, deadline=3.0), view(2, deadline=6.0)]
        assert ranked(DeadlineOrdering(), views) == [1, 2, 0]

    def test_no_deadline_ranks_last(self):
        views = [view(0, deadline=None), view(1, deadline=100.0)]
        assert ranked(DeadlineOrdering(), views) == [1, 0]

    def test_preemptive_by_default(self):
        assert DeadlineOrdering().preemptive is True

    def test_slack_ranking_when_priced(self):
        # Least laxity first: the later deadline is effectively tighter
        # once remaining time is subtracted.
        views = [
            view(0, deadline=5.0, remaining_seconds=1.0),   # slack 4
            view(1, deadline=8.0, remaining_seconds=7.5),   # slack 0.5
        ]
        assert ranked(DeadlineOrdering(), views) == [1, 0]


class TestAgingEndToEnd:
    """Aging bounds starvation in a served workload, not just in keys."""

    @staticmethod
    def serve(aging_rate):
        from repro.data import synthetic_dataset
        from repro.gpu import H100
        from repro.models.config import LLAMA3_8B
        from repro.models.layer_costs import LayerCostModel
        from repro.scheduler import AdapterJob, SchedulerConfig
        from repro.serve import (
            OnlineOrchestrator,
            OrchestratorConfig,
            SlotAdmission,
            StreamingSimExecutor,
        )

        cost = LayerCostModel(LLAMA3_8B, H100, strategy="fused_multi")
        # One heavy tenant at t=0 against a steady stream of shorts:
        # exactly the pressure pure SRPT starves the heavy job under.
        heavy = ServeJob(
            job=AdapterJob(0, synthetic_dataset(0, "xsum", 64, seed=2), 8),
            arrival_time=0.0,
        )
        shorts = [
            ServeJob(
                job=AdapterJob(a, synthetic_dataset(a, "xsum", 8, seed=2), 8),
                arrival_time=0.0 if a == 1 else 0.08 * a,
            )
            for a in range(1, 17)
        ]
        config = OrchestratorConfig(
            scheduler=SchedulerConfig(capacity=8192, num_stages=2,
                                      use_milp=False),
            window_batches=1,
            admission=SlotAdmission(1),
            ordering=SRPTOrdering(aging_rate=aging_rate),
        )
        orchestrator = OnlineOrchestrator(StreamingSimExecutor(cost, 2),
                                          config)
        return orchestrator.run([heavy] + shorts)

    def test_aging_bounds_the_heavy_jobs_queueing(self):
        rate = 8.0  # batches of rank credit per unit of waiting
        starved = self.serve(aging_rate=0.0)
        aged = self.serve(aging_rate=rate)
        waited_starved = starved.records[0].queueing_delay
        waited_aged = aged.records[0].queueing_delay
        # Without aging the heavy job waits behind every short; with it,
        # its rank improves with wait and it is admitted strictly
        # earlier.
        assert waited_aged < waited_starved
        # The worst-case bound aging guarantees: the remaining-work gap
        # is at most (8 - 1) batches, so after (R - s) / rate time units
        # no *fresh* short can outrank the heavy job (jobs already
        # waiting age along with it and keep their order).  Every short
        # arriving after the bound must therefore be admitted after the
        # heavy job...
        bound = (8 - 1) / rate
        late_shorts = [
            r for a, r in aged.records.items()
            if a != 0 and r.arrival_time > bound
        ]
        assert late_shorts  # the trace does stretch past the bound
        assert all(
            r.admit_time >= aged.records[0].admit_time for r in late_shorts
        )
        # ...whereas pure SRPT serves even post-bound arrivals first --
        # that is the starvation aging removes.
        assert any(
            r.admit_time < starved.records[0].admit_time
            for a, r in starved.records.items()
            if a != 0 and r.arrival_time > bound
        )
        # Both runs finish everything.
        for result in (starved, aged):
            assert all(r.finish_time is not None
                       for r in result.records.values())


class TestProtocol:
    def test_all_shipped_policies_conform(self):
        for policy in (FCFSOrdering(), SRPTOrdering(), PriorityOrdering(),
                       DeadlineOrdering()):
            assert isinstance(policy, OrderingPolicy)
            assert validate_policy(policy) is policy

    def test_validate_rejects_non_policies(self):
        with pytest.raises(ScheduleError, match="OrderingPolicy"):
            validate_policy(object())


class TestServeJobSLOFields:
    def test_defaults_are_best_effort(self, tiny_serve_job):
        assert tiny_serve_job.priority == 0
        assert tiny_serve_job.deadline is None

    def test_deadline_before_arrival_rejected(self, tiny_serve_job):
        from dataclasses import replace

        with pytest.raises(ScheduleError, match="deadline"):
            replace(tiny_serve_job, arrival_time=5.0, deadline=5.0)


@pytest.fixture
def tiny_serve_job():
    from repro.data import synthetic_dataset
    from repro.scheduler import AdapterJob

    return ServeJob(
        job=AdapterJob(0, synthetic_dataset(0, "xsum", 8, seed=1), 4),
        arrival_time=0.0,
    )
