"""Tests for the slot-candidate ordering policies."""

import pytest

from repro.errors import ScheduleError
from repro.serve import (
    DeadlineOrdering,
    FCFSOrdering,
    JobView,
    OrderingPolicy,
    PriorityOrdering,
    ServeJob,
    SRPTOrdering,
)
from repro.serve.ordering import validate_policy


def view(aid, arrival=0.0, priority=0, deadline=None, remaining=4,
         admitted=False):
    return JobView(
        adapter_id=aid,
        arrival_time=arrival,
        priority=priority,
        deadline=deadline,
        remaining_batches=remaining,
        admitted=admitted,
    )


def ranked(policy, views, now=0.0):
    return [v.adapter_id for v in sorted(views, key=lambda v: policy.key(v, now))]


class TestFCFS:
    def test_ranks_by_arrival(self):
        views = [view(0, arrival=2.0), view(1, arrival=0.5), view(2, arrival=1.0)]
        assert ranked(FCFSOrdering(), views) == [1, 2, 0]

    def test_adapter_id_breaks_ties(self):
        views = [view(3, arrival=1.0), view(1, arrival=1.0)]
        assert ranked(FCFSOrdering(), views) == [1, 3]

    def test_never_preemptive(self):
        assert FCFSOrdering().preemptive is False


class TestSRPT:
    def test_ranks_by_remaining_batches(self):
        views = [view(0, remaining=9), view(1, remaining=1), view(2, remaining=4)]
        assert ranked(SRPTOrdering(), views) == [1, 2, 0]

    def test_banked_progress_counts(self):
        # A preempted job with 2 of 10 batches left outranks a fresh
        # 5-batch arrival: SRPT is remaining work, not total size.
        views = [view(0, remaining=5), view(1, remaining=2)]
        assert ranked(SRPTOrdering(), views) == [1, 0]

    def test_arrival_breaks_ties(self):
        views = [view(0, arrival=1.0, remaining=3), view(1, arrival=0.0, remaining=3)]
        assert ranked(SRPTOrdering(), views) == [1, 0]

    def test_preemption_is_opt_in(self):
        assert SRPTOrdering().preemptive is False
        assert SRPTOrdering(preemptive=True).preemptive is True


class TestPriority:
    def test_higher_class_first(self):
        views = [view(0, priority=0), view(1, priority=2), view(2, priority=1)]
        assert ranked(PriorityOrdering(), views) == [1, 2, 0]

    def test_fcfs_within_class(self):
        views = [
            view(0, arrival=2.0, priority=1),
            view(1, arrival=1.0, priority=1),
        ]
        assert ranked(PriorityOrdering(), views) == [1, 0]

    def test_preemptive_by_default(self):
        assert PriorityOrdering().preemptive is True


class TestDeadline:
    def test_earliest_deadline_first(self):
        views = [view(0, deadline=9.0), view(1, deadline=3.0), view(2, deadline=6.0)]
        assert ranked(DeadlineOrdering(), views) == [1, 2, 0]

    def test_no_deadline_ranks_last(self):
        views = [view(0, deadline=None), view(1, deadline=100.0)]
        assert ranked(DeadlineOrdering(), views) == [1, 0]

    def test_preemptive_by_default(self):
        assert DeadlineOrdering().preemptive is True


class TestProtocol:
    def test_all_shipped_policies_conform(self):
        for policy in (FCFSOrdering(), SRPTOrdering(), PriorityOrdering(),
                       DeadlineOrdering()):
            assert isinstance(policy, OrderingPolicy)
            assert validate_policy(policy) is policy

    def test_validate_rejects_non_policies(self):
        with pytest.raises(ScheduleError, match="OrderingPolicy"):
            validate_policy(object())


class TestServeJobSLOFields:
    def test_defaults_are_best_effort(self, tiny_serve_job):
        assert tiny_serve_job.priority == 0
        assert tiny_serve_job.deadline is None

    def test_deadline_before_arrival_rejected(self, tiny_serve_job):
        from dataclasses import replace

        with pytest.raises(ScheduleError, match="deadline"):
            replace(tiny_serve_job, arrival_time=5.0, deadline=5.0)


@pytest.fixture
def tiny_serve_job():
    from repro.data import synthetic_dataset
    from repro.scheduler import AdapterJob

    return ServeJob(
        job=AdapterJob(0, synthetic_dataset(0, "xsum", 8, seed=1), 4),
        arrival_time=0.0,
    )
