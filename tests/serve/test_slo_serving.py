"""SLO-aware serving: ordering, preemption, and mid-wave admission."""

import pytest

from repro.data import synthetic_dataset
from repro.errors import ScheduleError
from repro.gpu import H100
from repro.models.config import LLAMA3_8B
from repro.models.layer_costs import LayerCostModel
from repro.scheduler import AdapterJob, SchedulerConfig, find_violations
from repro.serve import (
    DeadlineOrdering,
    FCFSOrdering,
    OnlineOrchestrator,
    OrchestratorConfig,
    OrchestratorResult,
    PriorityOrdering,
    ServeJob,
    SlotAdmission,
    SRPTOrdering,
    StreamingSimExecutor,
)

DATASETS = ["xsum", "cnn_dailymail", "wikisum", "mixed"]
NUM_STAGES = 4


def make_orchestrator(ordering=None, slots=2, window=2, mid_wave=False,
                      num_stages=NUM_STAGES):
    config = OrchestratorConfig(
        scheduler=SchedulerConfig(capacity=8192, num_stages=num_stages,
                                  use_milp=False),
        window_batches=window,
        admission=SlotAdmission(slots) if slots else None,
        ordering=ordering,
        mid_wave_admission=mid_wave,
    )
    cost = LayerCostModel(LLAMA3_8B, H100, strategy="fused_multi")
    return OnlineOrchestrator(StreamingSimExecutor(cost, num_stages), config)


def make_job(aid, samples, arrival, gbs=8, priority=0, deadline=None, seed=5):
    dataset = synthetic_dataset(aid, DATASETS[aid % 4], samples, seed=seed)
    return ServeJob(job=AdapterJob(aid, dataset, gbs), arrival_time=arrival,
                    priority=priority, deadline=deadline)


def heavy_tailed_workload(**overrides):
    """One huge, two medium, five short tenants; shorts arrive last."""
    sizes = [96, 32, 32, 8, 8, 8, 8, 8]
    arrivals = [0.0, 0.02, 0.04, 0.06, 0.08, 0.10, 0.12, 0.14]
    priority = overrides.get("priority", {})
    deadline = overrides.get("deadline", {})
    return [
        make_job(a, n, t, priority=priority.get(a, 0),
                 deadline=deadline.get(a))
        for a, (n, t) in enumerate(zip(sizes, arrivals))
    ]


def assert_complete_and_safe(orchestrator, result, workload):
    assert result.violations == 0
    assert find_violations(orchestrator.stream, NUM_STAGES) == []
    for job in workload:
        record = result.records[job.adapter_id]
        assert record.finish_time is not None
    # Every sample scheduled exactly once, in order, despite churn.
    for job in workload:
        seen = sorted(
            a.sample.index
            for mb in orchestrator.stream
            for a in mb.assignments
            if a.adapter_id == job.adapter_id
        )
        assert seen == list(range(len(job.job.dataset)))


class TestOrderingPolicies:
    def test_fcfs_default_unchanged(self):
        # ordering=None must reproduce the original FCFS serving run
        # microbatch for microbatch.
        workload = heavy_tailed_workload()
        default = make_orchestrator(ordering=None)
        explicit = make_orchestrator(ordering=FCFSOrdering())
        result_default = default.run(heavy_tailed_workload())
        result_explicit = explicit.run(workload)
        assert result_default.makespan == result_explicit.makespan
        assert len(default.stream) == len(explicit.stream)
        assert result_default.preemptions == 0
        assert result_explicit.preemptions == 0

    def test_srpt_beats_fcfs_on_mean_jct(self):
        fcfs = make_orchestrator(ordering=FCFSOrdering())
        srpt = make_orchestrator(ordering=SRPTOrdering())
        fcfs_result = fcfs.run(heavy_tailed_workload())
        srpt_result = srpt.run(heavy_tailed_workload())
        assert_complete_and_safe(srpt, srpt_result, heavy_tailed_workload())
        assert (srpt_result.mean_completion_time()
                < fcfs_result.mean_completion_time())

    def test_srpt_admits_shortest_waiting_job_first(self):
        # One slot: the long job takes it; at the boundary the shortest
        # of the waiting jobs must be admitted next, not the earliest.
        workload = [
            make_job(0, 16, 0.0, gbs=8),   # long, holds the slot
            make_job(1, 16, 0.01, gbs=8),  # earlier but longer
            make_job(2, 8, 0.02, gbs=8),   # later but shorter
        ]
        orchestrator = make_orchestrator(ordering=SRPTOrdering(), slots=1,
                                         window=None)
        result = orchestrator.run(workload)
        assert (result.records[2].admit_time
                < result.records[1].admit_time)

    def test_nonpreemptive_policy_never_preempts(self):
        orchestrator = make_orchestrator(ordering=SRPTOrdering())
        result = orchestrator.run(heavy_tailed_workload())
        assert result.preemptions == 0
        assert all(r.preemptions == 0 for r in result.records.values())


class TestPreemption:
    def test_high_class_arrival_evicts_lowest_class(self):
        workload = heavy_tailed_workload(
            priority={3: 1, 4: 1, 5: 1, 6: 1, 7: 1}
        )
        orchestrator = make_orchestrator(ordering=PriorityOrdering())
        result = orchestrator.run(workload)
        assert_complete_and_safe(orchestrator, result, workload)
        assert result.preemptions >= 1
        # Only best-effort jobs were evicted.
        for record in result.records.values():
            if record.priority > 0:
                assert record.preemptions == 0

    def test_preemptive_srpt_cuts_mean_jct_further(self):
        srpt = make_orchestrator(ordering=SRPTOrdering())
        preemptive = make_orchestrator(ordering=SRPTOrdering(preemptive=True))
        srpt_result = srpt.run(heavy_tailed_workload())
        preemptive_result = preemptive.run(heavy_tailed_workload())
        assert preemptive_result.preemptions >= 1
        assert (preemptive_result.mean_completion_time()
                <= srpt_result.mean_completion_time())

    def test_preempted_job_resumes_and_finishes(self):
        workload = heavy_tailed_workload(
            priority={3: 1, 4: 2, 5: 1, 6: 1, 7: 1}
        )
        orchestrator = make_orchestrator(ordering=PriorityOrdering())
        result = orchestrator.run(workload)
        assert_complete_and_safe(orchestrator, result, workload)
        evicted = [r for r in result.records.values() if r.preemptions > 0]
        assert evicted
        for record in evicted:
            assert record.finish_time is not None

    def test_equal_keys_never_preempt(self):
        # All jobs in the same class: a preemptive priority policy must
        # not thrash slots between equals.
        orchestrator = make_orchestrator(ordering=PriorityOrdering())
        result = orchestrator.run(heavy_tailed_workload())
        assert result.preemptions == 0

    def test_parked_job_can_migrate(self):
        workload = [
            make_job(0, 32, 0.0, gbs=8),
            make_job(1, 8, 0.05, gbs=8, priority=1),
        ]
        source = make_orchestrator(ordering=PriorityOrdering(), slots=1)
        source.start(workload)
        while source.num_parked == 0 and source.has_work():
            source.step()
        assert source.num_parked == 1
        ticket = source.eject_job(0)
        assert ticket.payload is not None
        assert ticket.completed >= 0
        target = make_orchestrator(ordering=PriorityOrdering(), slots=1)
        target.start([])
        target.inject_job(ticket)
        while target.step():
            pass
        result = target.finish()
        assert result.records[0].finish_time is not None


class TestMidWaveAdmission:
    def test_urgent_arrival_cuts_the_wave(self):
        workload = heavy_tailed_workload(
            priority={3: 1, 4: 1, 5: 1, 6: 1, 7: 1}
        )
        patient = make_orchestrator(ordering=PriorityOrdering())
        eager = make_orchestrator(ordering=PriorityOrdering(), mid_wave=True)
        patient_result = patient.run(
            heavy_tailed_workload(priority={3: 1, 4: 1, 5: 1, 6: 1, 7: 1})
        )
        eager_result = eager.run(workload)
        assert_complete_and_safe(eager, eager_result, workload)
        assert eager_result.wave_cuts >= 1
        assert patient_result.wave_cuts == 0
        # Cutting waves buys the high class lower JCT.
        assert (eager_result.mean_completion_time(priority=1)
                <= patient_result.mean_completion_time(priority=1))

    def test_fcfs_without_flag_never_cuts(self):
        orchestrator = make_orchestrator()
        result = orchestrator.run(heavy_tailed_workload())
        assert result.wave_cuts == 0

    def test_stream_stays_lossless_under_cuts(self):
        workload = heavy_tailed_workload(
            priority={3: 1, 5: 2, 7: 3}
        )
        orchestrator = make_orchestrator(
            ordering=PriorityOrdering(), mid_wave=True, window=3
        )
        result = orchestrator.run(workload)
        assert_complete_and_safe(orchestrator, result, workload)
        # Per-job batch order is still monotone.
        schedule = orchestrator.stream_schedule()
        for job in workload:
            batches = [
                b for b, _ in schedule.adapter_sample_order(job.adapter_id)
            ]
            assert batches == sorted(batches)


class TestDeadlines:
    def test_edf_meets_more_deadlines_than_fcfs(self):
        deadlines = {3: 3.0, 4: 3.2, 5: 3.4, 6: 3.6, 7: 3.8}
        fcfs = make_orchestrator(ordering=FCFSOrdering())
        edf = make_orchestrator(ordering=DeadlineOrdering())
        fcfs_result = fcfs.run(heavy_tailed_workload(deadline=deadlines))
        edf_result = edf.run(heavy_tailed_workload(deadline=deadlines))
        assert edf_result.deadline_miss_rate() <= fcfs_result.deadline_miss_rate()

    def test_miss_rate_zero_without_deadlines(self):
        orchestrator = make_orchestrator()
        result = orchestrator.run(heavy_tailed_workload())
        assert result.deadline_miss_rate() == 0.0
        assert result.deadline_misses() == 0


class TestEmptySession:
    def test_finish_after_zero_admitted_jobs_is_empty(self):
        # Regression: finish() used to report the idle executor's
        # degenerate 100% utilization when no wave ever ran.
        orchestrator = make_orchestrator()
        orchestrator.start([])
        result = orchestrator.finish()
        assert result == OrchestratorResult()
        assert result.utilization == 0.0
        assert result.makespan == 0.0
        assert result.records == {}

    def test_run_with_empty_workload_is_empty(self):
        result = make_orchestrator().run([])
        assert result == OrchestratorResult()

    def test_unadmitted_records_survive_in_empty_result(self):
        orchestrator = make_orchestrator()
        orchestrator.start([])
        orchestrator.offer(make_job(0, 8, 5.0))
        result = orchestrator.finish()
        assert result.utilization == 0.0
        assert result.records[0].finish_time is None
