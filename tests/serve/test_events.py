"""Tests for the discrete-event kernel: ordering, cancellation, lanes."""

from repro.serve import Event, EventKernel, EventKind


def drain(kernel):
    """Pop everything, returning ``(time, kind, lane, payload)`` tuples."""
    popped = []
    while (event := kernel.pop()) is not None:
        popped.append((event.time, event.kind, event.lane, event.payload))
    return popped


class TestDeterministicOrder:
    def test_pops_in_time_order(self):
        kernel = EventKernel()
        kernel.schedule(3.0, EventKind.WAVE_CLOSE, "c")
        kernel.schedule(1.0, EventKind.WAVE_CLOSE, "a")
        kernel.schedule(2.0, EventKind.WAVE_CLOSE, "b")
        assert [p[3] for p in drain(kernel)] == ["a", "b", "c"]

    def test_equal_time_breaks_by_kind_rank(self):
        # An arrival and a wave close at the same instant: the arrival
        # wins (EventKind.ARRIVAL ranks lowest), which is exactly the
        # lockstep loop's strict ``clock < next_arrival`` step gate.
        kernel = EventKernel()
        kernel.schedule(1.0, EventKind.WAVE_CLOSE, "step")
        kernel.schedule(1.0, EventKind.ARRIVAL, "arrive")
        assert [p[3] for p in drain(kernel)] == ["arrive", "step"]

    def test_equal_time_and_kind_breaks_by_lane(self):
        # Two replicas due at the same clock step in replica-id order --
        # the lockstep ``min(..., key=(clock, index))`` scan.
        kernel = EventKernel()
        kernel.schedule(1.0, EventKind.WAVE_CLOSE, "r2", lane=2)
        kernel.schedule(1.0, EventKind.WAVE_CLOSE, "r0", lane=0)
        kernel.schedule(1.0, EventKind.WAVE_CLOSE, "r1", lane=1)
        assert [p[3] for p in drain(kernel)] == ["r0", "r1", "r2"]

    def test_full_tie_breaks_by_schedule_order(self):
        kernel = EventKernel()
        kernel.schedule(1.0, EventKind.ARRIVAL, "first", lane=7)
        kernel.schedule(1.0, EventKind.ARRIVAL, "second", lane=7)
        assert [p[3] for p in drain(kernel)] == ["first", "second"]

    def test_two_identical_schedules_pop_identically(self):
        # Byte-level determinism: the same schedule drained twice yields
        # the same pop sequence, including every tie.
        def build():
            kernel = EventKernel()
            for seed in (5, 3, 9, 3, 1):
                kernel.schedule(float(seed % 4), EventKind(seed % 5), seed,
                                lane=seed % 3)
            return kernel

        first, second = drain(build()), drain(build())
        assert repr(first) == repr(second)


class TestClockSemantics:
    def test_now_tracks_popped_heap_events(self):
        kernel = EventKernel()
        kernel.schedule(2.5, EventKind.ARRIVAL, None)
        assert kernel.now == 0.0
        kernel.pop()
        assert kernel.now == 2.5

    def test_empty_kernel_pops_none(self):
        kernel = EventKernel()
        assert kernel.pop() is None
        assert len(kernel) == 0

    def test_processed_counts_by_kind(self):
        kernel = EventKernel()
        kernel.schedule(1.0, EventKind.ARRIVAL, None)
        kernel.schedule(2.0, EventKind.ARRIVAL, None)
        kernel.schedule(3.0, EventKind.WAVE_CLOSE, None)
        drain(kernel)
        assert kernel.processed[EventKind.ARRIVAL] == 2
        assert kernel.processed[EventKind.WAVE_CLOSE] == 1
        assert kernel.total_processed() == 3


class TestCancellation:
    def test_cancelled_event_is_skipped(self):
        kernel = EventKernel()
        doomed = kernel.schedule(1.0, EventKind.WAVE_CLOSE, "doomed")
        kernel.schedule(2.0, EventKind.WAVE_CLOSE, "kept")
        kernel.cancel(doomed)
        assert [p[3] for p in drain(kernel)] == ["kept"]

    def test_cancel_is_idempotent(self):
        kernel = EventKernel()
        doomed = kernel.schedule(1.0, EventKind.WAVE_CLOSE, None)
        kernel.cancel(doomed)
        kernel.cancel(doomed)  # second cancel must not corrupt the count
        assert drain(kernel) == []
        assert len(kernel) == 0

    def test_len_excludes_cancelled(self):
        kernel = EventKernel()
        live = kernel.schedule(1.0, EventKind.ARRIVAL, None)
        doomed = kernel.schedule(2.0, EventKind.ARRIVAL, None)
        kernel.cancel(doomed)
        assert len(kernel) == 1
        kernel.cancel(live)
        assert len(kernel) == 0

    def test_cancelled_events_are_not_counted_processed(self):
        kernel = EventKernel()
        doomed = kernel.schedule(1.0, EventKind.MIGRATION, None)
        kernel.cancel(doomed)
        drain(kernel)
        assert kernel.total_processed() == 0


class TestImmediateLane:
    def test_posted_events_beat_earlier_heap_events(self):
        # The control cascade: a posted REBALANCE runs before a heap
        # WAVE_CLOSE at an *earlier* time -- control is synchronous with
        # the event that posted it, like the lockstep loop's in-line
        # ``_rebalance()`` call.
        kernel = EventKernel()
        kernel.schedule(0.5, EventKind.WAVE_CLOSE, "heap")
        kernel.post(EventKind.REBALANCE, "soon")
        assert [p[3] for p in drain(kernel)] == ["soon", "heap"]

    def test_posted_events_drain_fifo(self):
        kernel = EventKernel()
        kernel.post(EventKind.REBALANCE, "a")
        kernel.post(EventKind.MIGRATION, "b")
        kernel.post(EventKind.REBALANCE, "c")
        assert [p[3] for p in drain(kernel)] == ["a", "b", "c"]

    def test_post_does_not_advance_now(self):
        kernel = EventKernel()
        kernel.schedule(4.0, EventKind.WAVE_CLOSE, None)
        kernel.pop()
        kernel.post(EventKind.REBALANCE, None)
        kernel.pop()
        assert kernel.now == 4.0

    def test_cancelled_posted_event_is_skipped(self):
        kernel = EventKernel()
        doomed = kernel.post(EventKind.FLUSH, "doomed")
        kernel.post(EventKind.FLUSH, "kept")
        kernel.cancel(doomed)
        assert [p[3] for p in drain(kernel)] == ["kept"]


class TestEventSortKey:
    def test_sort_key_shape(self):
        event = Event(time=1.5, kind=EventKind.MIGRATION, lane=3, seq=7)
        assert event.sort_key() == (1.5, (int(EventKind.MIGRATION), 3), 7)

    def test_priority_ranks_kinds(self):
        arrival = Event(time=0.0, kind=EventKind.ARRIVAL, lane=0, seq=0)
        close = Event(time=0.0, kind=EventKind.WAVE_CLOSE, lane=0, seq=1)
        assert arrival.priority < close.priority
