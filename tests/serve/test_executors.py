"""Tests for the streaming executors.

The key property: :class:`StreamingSimExecutor` fed one microbatch at a
time reproduces :func:`repro.distsim.pipeline.simulate_stream` exactly --
same makespan, same per-stage busy time -- while additionally reporting
optimizer-step completion events.
"""

import numpy as np
import pytest

from repro.core.lora import LoRAConfig
from repro.data import synthetic_dataset
from repro.data.dataset import FinetuneDataset, Sample
from repro.distsim import simulate_stream, to_pipeline_microbatch
from repro.errors import ScheduleError, SimulationError
from repro.gpu import H100
from repro.models import TINY, TinyLoRATransformer
from repro.models.config import LLAMA3_8B
from repro.models.layer_costs import LayerCostModel
from repro.runtime import MultiLoRAEngine, NumericJob
from repro.scheduler import (
    AdapterJob,
    Assignment,
    Microbatch,
    MultiLoRAScheduler,
    SchedulerConfig,
)
from repro.serve import NumericExecutor, ServeJob, StreamingSimExecutor


def scheduled_stream(num_stages, num_jobs=4, samples=24, gbs=8, seed=5):
    datasets = ["xsum", "wikisum", "mixed", "cnn_dailymail"]
    jobs = [
        AdapterJob(a, synthetic_dataset(a, datasets[a % 4], samples, seed=seed),
                   gbs)
        for a in range(num_jobs)
    ]
    config = SchedulerConfig(capacity=8192, num_stages=num_stages,
                             use_milp=False)
    return jobs, MultiLoRAScheduler(jobs, config).schedule()


class TestStreamingSimExecutor:
    @pytest.mark.parametrize("num_stages", [1, 2, 4])
    def test_matches_simulate_stream_exactly(self, num_stages):
        jobs, sched = scheduled_stream(num_stages)
        cost = LayerCostModel(LLAMA3_8B, H100, strategy="fused_multi")
        reference = simulate_stream(
            [to_pipeline_microbatch(mb, cost, num_stages)
             for mb in sched.microbatches],
            num_stages,
        )
        executor = StreamingSimExecutor(cost, num_stages)
        for job in jobs:
            executor.add_job(ServeJob(job=job, arrival_time=0.0))
        events = []
        for mb in sched.microbatches:
            events.extend(executor.submit(mb))
        events.extend(executor.drain())
        result = executor.result()
        assert result.makespan == pytest.approx(reference.makespan, abs=1e-12)
        assert result.busy == pytest.approx(reference.busy, abs=1e-12)
        assert result.num_microbatches == reference.num_microbatches

    def test_step_events_cover_every_batch_in_order(self):
        jobs, sched = scheduled_stream(2)
        cost = LayerCostModel(LLAMA3_8B, H100, strategy="fused_multi")
        executor = StreamingSimExecutor(cost, 2)
        for job in jobs:
            executor.add_job(ServeJob(job=job, arrival_time=0.0))
        events = []
        for mb in sched.microbatches:
            events.extend(executor.submit(mb))
        events.extend(executor.drain())
        per_job = {}
        for event in events:
            per_job.setdefault(event.adapter_id, []).append(event)
        for job in jobs:
            batches = [e.global_batch for e in per_job[job.adapter_id]]
            assert batches == list(range(job.num_global_batches()))
            times = [e.time for e in per_job[job.adapter_id]]
            assert times == sorted(times)

    def test_bubble_violating_stream_detected(self):
        executor = StreamingSimExecutor(
            LayerCostModel(LLAMA3_8B, H100, strategy="fused_multi"), 4
        )
        samples = [Sample(0, i, 64) for i in range(2)]
        job = AdapterJob(0, FinetuneDataset(0, samples), 1)
        executor.add_job(ServeJob(job=job, arrival_time=0.0))
        first = Microbatch(capacity=8192)
        first.add(Assignment(samples[0], 0))
        second = Microbatch(capacity=8192)
        second.add(Assignment(samples[1], 1))
        executor.submit(first)
        with pytest.raises(SimulationError, match="bubble lemma"):
            executor.submit(second)  # gap of 1 < the required 4

    def test_drain_then_resume_is_a_flush(self):
        jobs, sched = scheduled_stream(2, num_jobs=2, samples=8, gbs=4)
        cost = LayerCostModel(LLAMA3_8B, H100, strategy="fused_multi")
        executor = StreamingSimExecutor(cost, 2)
        for job in jobs:
            executor.add_job(ServeJob(job=job, arrival_time=0.0))
        half = len(sched.microbatches) // 2
        for mb in sched.microbatches[:half]:
            executor.submit(mb)
        executor.drain()
        clock_after_flush = executor.clock
        for mb in sched.microbatches[half:]:
            executor.submit(mb)
        events = executor.drain()
        assert executor.clock > clock_after_flush
        assert executor.result().num_microbatches == len(sched.microbatches)
        assert events  # the tail batches completed after the resume
        # Drained segments are pruned: per-microbatch state stays bounded.
        assert executor._mbs == {}
        assert executor._fwd_end == {}

    def test_unregistered_adapter_fails_fast(self):
        executor = StreamingSimExecutor(
            LayerCostModel(LLAMA3_8B, H100, strategy="fused_multi"), 2
        )
        mb = Microbatch(capacity=8192)
        mb.add(Assignment(Sample(5, 0, 64), 0))
        with pytest.raises(SimulationError, match="add_job first"):
            executor.submit(mb)

    def test_advance_never_rewinds(self):
        cost = LayerCostModel(LLAMA3_8B, H100, strategy="fused_multi")
        executor = StreamingSimExecutor(cost, 2)
        executor.advance(5.0)
        executor.advance(1.0)
        assert executor.clock == 5.0


class TestPartialDrain:
    """``drain_job``: force only one adapter's in-flight work, not all."""

    def loaded_executor(self, num_stages=4):
        jobs, sched = scheduled_stream(num_stages, num_jobs=4, samples=8,
                                       gbs=4)
        cost = LayerCostModel(LLAMA3_8B, H100, strategy="fused_multi")
        executor = StreamingSimExecutor(cost, num_stages)
        for job in jobs:
            executor.add_job(ServeJob(job=job, arrival_time=0.0))
        events = []
        for mb in sched.microbatches:
            events.extend(executor.submit(mb))
        return jobs, sched, executor, events

    def test_target_adapter_fully_stepped_afterwards(self):
        jobs, sched, executor, events = self.loaded_executor()
        target = jobs[0].adapter_id
        events.extend(executor.drain_job(target))
        stepped = [e.global_batch for e in events if e.adapter_id == target]
        assert stepped == list(range(jobs[0].num_global_batches()))

    def test_later_microbatches_stay_in_flight(self):
        # Unlike drain(), the pipeline tail past the target's last
        # microbatch keeps its backward passes pending.
        jobs, sched, executor, _ = self.loaded_executor()
        # Pick the adapter whose last microbatch comes *earliest* in the
        # stream, so some other adapter's work definitely trails it.
        last_mb = {}
        for k, mb in enumerate(sched.microbatches):
            for a in mb.assignments:
                last_mb[a.adapter_id] = k
        target = min(last_mb, key=lambda a: (last_mb[a], a))
        executor.drain_job(target)
        n = executor._submitted
        # A microbatch is still in flight until its *stage-0* backward
        # (the last of its backwards under 1F1B) has run.
        in_flight = [
            k for k in range(max(0, n - executor.num_stages + 1), n)
            if (0, k) not in executor._bwd_end
        ]
        assert in_flight, "partial drain flushed the whole pipeline"
        assert all(k > last_mb[target] for k in in_flight)

    def test_full_drain_after_partial_is_lossless(self):
        jobs, sched, executor, events = self.loaded_executor()
        events.extend(executor.drain_job(jobs[1].adapter_id))
        events.extend(executor.drain())
        per_job = {}
        for event in events:
            per_job.setdefault(event.adapter_id, []).append(event.global_batch)
        for job in jobs:
            assert per_job[job.adapter_id] == list(
                range(job.num_global_batches())
            )
        assert executor.result().num_microbatches == len(sched.microbatches)

    def test_drain_job_with_nothing_in_flight_is_a_noop(self):
        jobs, sched, executor, _ = self.loaded_executor()
        clock = executor.clock
        executor.drain()
        assert executor.drain_job(jobs[0].adapter_id) == []
        assert executor.clock > clock  # drain moved it; drain_job did not

    def test_numeric_executor_drain_job_is_empty(self):
        engine = MultiLoRAEngine(TinyLoRATransformer(TINY))
        executor = NumericExecutor(engine)
        assert executor.drain_job(0) == []


class TestNumericExecutor:
    def make_serve_job(self, aid=0, n=4, gbs=2, seed=0):
        rng = np.random.default_rng(seed)
        streams = [rng.integers(0, TINY.vocab_size, 6) for _ in range(n)]
        numeric = NumericJob(
            aid, LoRAConfig(rank=2, alpha=1.0, dropout=0.0, adapter_id=aid),
            streams, gbs,
        )
        dataset = FinetuneDataset(
            aid, [Sample(aid, i, len(t)) for i, t in enumerate(streams)]
        )
        return ServeJob(job=AdapterJob(aid, dataset, gbs), arrival_time=0.0,
                        numeric=numeric)

    def test_requires_numeric_payload(self):
        engine = MultiLoRAEngine(TinyLoRATransformer(TINY))
        executor = NumericExecutor(engine)
        job = self.make_serve_job()
        bare = ServeJob(job=job.job, arrival_time=0.0)
        with pytest.raises(ScheduleError, match="numeric"):
            executor.add_job(bare)

    def test_clock_charges_padded_tokens_and_noop_capacity(self):
        engine = MultiLoRAEngine(TinyLoRATransformer(TINY))
        executor = NumericExecutor(engine)
        job = self.make_serve_job()
        executor.add_job(job)
        mb = Microbatch(capacity=64, padding_multiple=8)
        mb.add(Assignment(job.job.dataset.samples[0], 0))
        executor.submit(mb)
        assert executor.clock == mb.padded_tokens
        executor.submit(Microbatch(capacity=64, padding_multiple=8))
        assert executor.clock == mb.padded_tokens + 64

    def test_events_carry_losses_and_times(self):
        engine = MultiLoRAEngine(TinyLoRATransformer(TINY))
        executor = NumericExecutor(engine)
        job = self.make_serve_job(gbs=1)
        executor.add_job(job)
        mb = Microbatch(capacity=64, padding_multiple=1)
        mb.add(Assignment(job.job.dataset.samples[0], 0))
        events = executor.submit(mb)
        assert len(events) == 1
        assert events[0].adapter_id == 0
        assert events[0].global_batch == 0
        assert events[0].loss is not None and events[0].loss > 0
        assert events[0].time == executor.clock
        assert executor.drain() == []
