"""Tests for tenant routing policies and the TenantRouter."""

import pytest

from repro.data import synthetic_dataset
from repro.data.dataset import FinetuneDataset, Sample
from repro.errors import ScheduleError
from repro.scheduler import AdapterJob
from repro.serve import (
    LeastLoadedRouting,
    PackingAffinityRouting,
    ReplicaView,
    RoundRobinRouting,
    RoutingPolicy,
    ServeJob,
    TenantRouter,
)


def view(index, load=0, lengths=(), slots_free=None):
    return ReplicaView(
        index=index,
        clock=0.0,
        outstanding_batches=load,
        num_active=len(lengths),
        num_pending=0,
        slots_free=slots_free,
        live_mean_lengths=tuple(lengths),
    )


def make_job(adapter_id=0, length=100, samples=4, gbs=2):
    dataset = FinetuneDataset(
        adapter_id,
        [Sample(adapter_id, i, length) for i in range(samples)],
    )
    return ServeJob(
        job=AdapterJob(adapter_id, dataset, gbs), arrival_time=0.0
    )


class TestRoundRobin:
    def test_cycles_over_replicas(self):
        policy = RoundRobinRouting()
        replicas = [view(0), view(1), view(2)]
        picks = [policy.choose(make_job(i), replicas) for i in range(7)]
        assert picks == [0, 1, 2, 0, 1, 2, 0]

    def test_ignores_load(self):
        policy = RoundRobinRouting()
        replicas = [view(0, load=100), view(1, load=0)]
        assert policy.choose(make_job(), replicas) == 0


class TestLeastLoaded:
    def test_picks_minimum_outstanding_batches(self):
        policy = LeastLoadedRouting()
        replicas = [view(0, load=5), view(1, load=2), view(2, load=9)]
        assert policy.choose(make_job(), replicas) == 1

    def test_ties_break_to_lowest_index(self):
        policy = LeastLoadedRouting()
        replicas = [view(0, load=3), view(1, load=3)]
        assert policy.choose(make_job(), replicas) == 0


class TestPackingAffinity:
    def test_prefers_similar_mean_length_within_slack(self):
        policy = PackingAffinityRouting(load_slack=4)
        # Replica 1 serves tenants whose mean length matches the arrival.
        replicas = [
            view(0, load=2, lengths=(900.0,)),
            view(1, load=4, lengths=(110.0,)),
        ]
        job = make_job(length=100)
        assert policy.choose(job, replicas) == 1

    def test_load_wins_beyond_the_slack(self):
        policy = PackingAffinityRouting(load_slack=2)
        # The shape-affine replica is too far behind on load.
        replicas = [
            view(0, load=0, lengths=(900.0,)),
            view(1, load=10, lengths=(100.0,)),
        ]
        job = make_job(length=100)
        assert policy.choose(job, replicas) == 0

    def test_empty_replica_is_a_perfect_fit(self):
        policy = PackingAffinityRouting(load_slack=4)
        replicas = [view(0, load=1, lengths=(500.0,)), view(1, load=0)]
        assert policy.choose(make_job(length=500), replicas) == 1

    def test_negative_slack_rejected(self):
        with pytest.raises(ScheduleError, match="load_slack"):
            PackingAffinityRouting(load_slack=-1)

    def test_is_a_routing_policy(self):
        assert isinstance(PackingAffinityRouting(), RoutingPolicy)
        assert isinstance(LeastLoadedRouting(), RoutingPolicy)
        assert isinstance(RoundRobinRouting(), RoutingPolicy)


class TestTenantRouter:
    def test_records_assignments(self):
        router = TenantRouter(LeastLoadedRouting())
        replicas = [view(0, load=4), view(1, load=1)]
        job = make_job(adapter_id=7)
        assert router.route(job, replicas) == 1
        assert router.assignments == {7: 1}

    def test_reassign_updates_the_map(self):
        router = TenantRouter(LeastLoadedRouting())
        router.route(make_job(adapter_id=3), [view(0), view(1, load=5)])
        router.reassign(3, 1)
        assert router.assignments[3] == 1

    def test_zero_replicas_rejected(self):
        router = TenantRouter(RoundRobinRouting())
        with pytest.raises(ScheduleError, match="zero replicas"):
            router.route(make_job(), [])

    def test_out_of_range_policy_choice_rejected(self):
        class Broken:
            def choose(self, job, replicas):
                return len(replicas)

        router = TenantRouter(Broken())
        with pytest.raises(ScheduleError, match="chose replica"):
            router.route(make_job(), [view(0)])

    def test_routes_real_synthetic_jobs(self):
        router = TenantRouter(PackingAffinityRouting())
        jobs = [
            ServeJob(
                job=AdapterJob(a, synthetic_dataset(a, "xsum", 8, seed=1), 4),
                arrival_time=float(a),
            )
            for a in range(3)
        ]
        views = [view(0), view(1)]
        for job in jobs:
            index = router.route(job, views)
            assert index in (0, 1)
        assert len(router.assignments) == 3


class TestPriorityHeadroom:
    def high(self, adapter_id=9):
        from dataclasses import replace

        return replace(make_job(adapter_id), priority=2)

    def test_high_class_goes_to_most_free_slots(self):
        from repro.serve import PriorityHeadroomRouting

        policy = PriorityHeadroomRouting(high_class=1)
        replicas = [
            view(0, load=0, slots_free=1),
            view(1, load=9, slots_free=3),
        ]
        assert policy.choose(self.high(), replicas) == 1

    def test_high_class_prefers_unbounded_admission(self):
        from repro.serve import PriorityHeadroomRouting

        policy = PriorityHeadroomRouting(high_class=1)
        replicas = [view(0, slots_free=4), view(1, slots_free=None)]
        assert policy.choose(self.high(), replicas) == 1

    def test_best_effort_avoids_the_reserve(self):
        from repro.serve import PriorityHeadroomRouting

        policy = PriorityHeadroomRouting(high_class=1, reserve=1)
        # Replica 0 is less loaded but down to its reserved slot.
        replicas = [
            view(0, load=1, slots_free=1),
            view(1, load=5, slots_free=3),
        ]
        assert policy.choose(make_job(), replicas) == 1

    def test_reserve_is_headroom_not_a_partition(self):
        from repro.serve import PriorityHeadroomRouting

        policy = PriorityHeadroomRouting(high_class=1, reserve=2)
        # Every replica is at (or under) the reserve: fall back to
        # least-loaded rather than refusing to route.
        replicas = [
            view(0, load=7, slots_free=1),
            view(1, load=3, slots_free=2),
        ]
        assert policy.choose(make_job(), replicas) == 1

    def test_fallback_is_plain_least_loaded(self):
        from dataclasses import replace

        from repro.serve import PriorityHeadroomRouting

        policy = PriorityHeadroomRouting(high_class=1, reserve=2)
        # All replicas at/under the reserve: load decides, not
        # high-class pressure -- the documented fallback.
        replicas = [
            replace(view(0, load=1, slots_free=1), live_priorities=(2,)),
            replace(view(1, load=40, slots_free=2), live_priorities=()),
        ]
        assert policy.choose(make_job(), replicas) == 0

    def test_best_effort_avoids_high_class_pressure(self):
        from dataclasses import replace

        from repro.serve import PriorityHeadroomRouting

        policy = PriorityHeadroomRouting(high_class=1, reserve=0)
        # Equal load and room everywhere: the replica with no high-class
        # tenants is the one where a best-effort job won't be preempted.
        replicas = [
            replace(view(0, load=4, slots_free=3), live_priorities=(2, 1)),
            replace(view(1, load=4, slots_free=3), live_priorities=(0, 0)),
        ]
        assert policy.choose(make_job(), replicas) == 1

    def test_negative_reserve_rejected(self):
        from repro.serve import PriorityHeadroomRouting

        with pytest.raises(ScheduleError, match="reserve"):
            PriorityHeadroomRouting(reserve=-1)

    def test_is_a_routing_policy(self):
        from repro.serve import PriorityHeadroomRouting

        assert isinstance(PriorityHeadroomRouting(), RoutingPolicy)

    def test_view_exposes_live_priorities(self):
        assert view(0).live_priorities == ()


class TestCostAware:
    def test_is_a_routing_policy(self):
        from repro.serve import CostAwareRouting

        assert isinstance(CostAwareRouting(), RoutingPolicy)

    def test_routes_on_seconds_not_batches(self):
        from dataclasses import replace

        from repro.serve import CostAwareRouting

        # Replica 0: many cheap batches.  Replica 1: few expensive ones.
        replicas = [
            replace(view(0, load=12), expected_remaining_time=0.4),
            replace(view(1, load=3), expected_remaining_time=2.5),
        ]
        assert CostAwareRouting().choose(make_job(), replicas) == 0
        # Least-loaded, batch-counting, disagrees -- that is the point.
        assert LeastLoadedRouting().choose(make_job(), replicas) == 1

    def test_falls_back_when_views_are_unpriced(self):
        from repro.serve import CostAwareRouting

        replicas = [view(0, load=12), view(1, load=3)]
        assert CostAwareRouting().choose(make_job(), replicas) == 1

    def test_works_under_tenant_router(self):
        from dataclasses import replace

        from repro.serve import CostAwareRouting

        router = TenantRouter(CostAwareRouting())
        replicas = [
            replace(view(0), expected_remaining_time=5.0),
            replace(view(1), expected_remaining_time=1.0),
        ]
        job = make_job(7)
        assert router.route(job, replicas) == 1
        assert router.assignments[7] == 1

    def test_view_seconds_fields_default_to_unpriced(self):
        snapshot = view(0)
        assert snapshot.expected_remaining_time is None
        assert snapshot.expected_wave_time is None
        assert snapshot.num_parked == 0
