"""Unit tests for the live serving gateway: clocks, door checks, holds,
cancellation, status streaming, the ledger, and ServeConfig wiring."""

import asyncio

import pytest

from repro.data import synthetic_dataset
from repro.errors import ScheduleError
from repro.gpu import H100
from repro.models.config import LLAMA3_8B
from repro.models.layer_costs import LayerCostModel
from repro.scheduler import AdapterJob, SchedulerConfig
from repro.serve import (
    SHED_REASONS,
    GatewayLimits,
    GatewayOverload,
    GatewayResult,
    GatewayTicket,
    ManualClock,
    ServeConfig,
    ServeGateway,
    WallClock,
)

COST = LayerCostModel(LLAMA3_8B, H100, strategy="fused_multi")
SCHED = SchedulerConfig(capacity=8192, num_stages=2, use_milp=False)
DATASETS = ["xsum", "cnn_dailymail", "wikisum", "mixed"]


def make_job(adapter_id, samples=8, gbs=4):
    dataset = synthetic_dataset(
        adapter_id, DATASETS[adapter_id % 4], samples, seed=3
    )
    return AdapterJob(adapter_id, dataset, gbs)


def make_gateway(clock=None, config=None, **gateway_knobs):
    config = config or ServeConfig(
        num_replicas=1, slots=2, window_batches=1, **gateway_knobs
    )
    return config.build_gateway(COST, SCHED, clock=clock or ManualClock())


def run(coroutine):
    return asyncio.run(coroutine)


class TestClocks:
    def test_manual_clock_scripts_time(self):
        clock = ManualClock(start=1.0)
        assert clock.now() == 1.0
        assert clock.advance(0.5) == 1.5
        assert clock.now() == 1.5

    def test_manual_clock_rejects_regression(self):
        with pytest.raises(ScheduleError):
            ManualClock(start=-1.0)
        with pytest.raises(ScheduleError):
            ManualClock().advance(-0.1)

    def test_wall_clock_is_nondecreasing_from_zero(self):
        clock = WallClock()
        first = clock.now()
        assert first >= 0.0
        assert clock.now() >= first

    def test_wall_clock_rejects_bad_scale(self):
        with pytest.raises(ScheduleError):
            WallClock(time_scale=0.0)


class TestGatewayLimits:
    def test_defaults_are_all_off(self):
        limits = GatewayLimits()
        assert limits.queue_bound is None
        assert limits.rate is None
        assert limits.fairness_share is None
        assert limits.ingress_hold == 0.0

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"queue_bound": 0},
            {"rate": 0.0},
            {"rate": -1.0},
            {"burst": 0.5},
            {"fairness_share": 0.0},
            {"fairness_share": 1.5},
            {"ingress_hold": -0.1},
        ],
    )
    def test_invalid_limits_are_rejected(self, kwargs):
        with pytest.raises(ScheduleError):
            GatewayLimits(**kwargs)


class TestTokenBucket:
    def test_burst_then_rate_limited_with_retry_hint(self):
        async def scenario():
            gateway = make_gateway(gateway_rate=1.0, gateway_burst=2.0)
            first = await gateway.submit(make_job(0))
            second = await gateway.submit(make_job(1))
            third = await gateway.submit(make_job(2))
            assert isinstance(first, GatewayTicket)
            assert isinstance(second, GatewayTicket)
            assert isinstance(third, GatewayOverload)
            assert third.reason == "rate_limited"
            # An empty bucket refills at 1 token/s: a full token is 1s out.
            assert third.retry_after == pytest.approx(1.0)
            return gateway

        gateway = run(scenario())
        assert gateway.stats.sheds["rate_limited"] == 1

    def test_refill_restores_admission(self):
        async def scenario():
            clock = ManualClock()
            gateway = make_gateway(clock, gateway_rate=1.0, gateway_burst=1.0)
            assert isinstance(await gateway.submit(make_job(0)), GatewayTicket)
            shed = await gateway.submit(make_job(1))
            assert isinstance(shed, GatewayOverload)
            clock.advance(1.5)
            retried = await gateway.submit(make_job(1))
            assert isinstance(retried, GatewayTicket)

        run(scenario())

    def test_buckets_are_per_tenant(self):
        async def scenario():
            gateway = make_gateway(gateway_rate=1.0, gateway_burst=1.0)
            assert isinstance(
                await gateway.submit(make_job(0), tenant="a"), GatewayTicket
            )
            # Tenant a's bucket is empty; tenant b's is untouched.
            assert isinstance(
                await gateway.submit(make_job(1), tenant="b"), GatewayTicket
            )
            shed = await gateway.submit(make_job(2), tenant="a")
            assert isinstance(shed, GatewayOverload)
            assert shed.tenant == "a"

        run(scenario())


class TestQueueBound:
    def test_backlog_beyond_bound_sheds_queue_full(self):
        async def scenario():
            # Hold window keeps submissions at the door, so the backlog
            # is fully door-side and deterministic.
            gateway = make_gateway(gateway_queue_bound=2, gateway_hold=10.0)
            assert isinstance(await gateway.submit(make_job(0)), GatewayTicket)
            assert isinstance(await gateway.submit(make_job(1)), GatewayTicket)
            shed = await gateway.submit(make_job(2))
            assert isinstance(shed, GatewayOverload)
            assert shed.reason == "queue_full"
            assert shed.retry_after is None

        run(scenario())

    def test_bound_is_per_tenant(self):
        async def scenario():
            gateway = make_gateway(gateway_queue_bound=1, gateway_hold=10.0)
            assert isinstance(
                await gateway.submit(make_job(0), tenant="a"), GatewayTicket
            )
            assert isinstance(
                await gateway.submit(make_job(1), tenant="b"), GatewayTicket
            )
            shed = await gateway.submit(make_job(2), tenant="a")
            assert isinstance(shed, GatewayOverload)

        run(scenario())

    def test_cancel_frees_backlog(self):
        async def scenario():
            gateway = make_gateway(gateway_queue_bound=1, gateway_hold=10.0)
            ticket = await gateway.submit(make_job(0))
            assert isinstance(ticket, GatewayTicket)
            assert await gateway.cancel(0)
            retried = await gateway.submit(make_job(1))
            assert isinstance(retried, GatewayTicket)

        run(scenario())


class TestFairnessQuota:
    def test_lone_tenant_is_never_quota_limited(self):
        async def scenario():
            gateway = make_gateway(gateway_fairness=0.25, gateway_hold=10.0)
            for adapter_id in range(5):
                outcome = await gateway.submit(make_job(adapter_id), tenant="a")
                assert isinstance(outcome, GatewayTicket)

        run(scenario())

    def test_hog_is_quota_limited_once_others_wait(self):
        async def scenario():
            gateway = make_gateway(gateway_fairness=0.5, gateway_hold=10.0)
            assert isinstance(
                await gateway.submit(make_job(0), tenant="hog"), GatewayTicket
            )
            assert isinstance(
                await gateway.submit(make_job(1), tenant="hog"), GatewayTicket
            )
            assert isinstance(
                await gateway.submit(make_job(2), tenant="small"), GatewayTicket
            )
            # hog holds 2 of 3; a 4th total would allow ceil(0.5*4)=2,
            # and hog already holds 2 -- shed.
            shed = await gateway.submit(make_job(3), tenant="hog")
            assert isinstance(shed, GatewayOverload)
            assert shed.reason == "quota"
            # The small tenant is under its share and still admitted.
            assert isinstance(
                await gateway.submit(make_job(4), tenant="small"), GatewayTicket
            )

        run(scenario())


class TestDoorAdmission:
    def test_past_deadline_is_shed_infeasible(self):
        async def scenario():
            clock = ManualClock()
            clock.advance(5.0)
            gateway = make_gateway(clock)
            shed = await gateway.submit(make_job(0), deadline=5.0)
            assert isinstance(shed, GatewayOverload)
            assert shed.reason == "infeasible"

        run(scenario())

    def test_hold_window_counts_against_the_deadline(self):
        async def scenario():
            gateway = make_gateway(gateway_hold=2.0)
            shed = await gateway.submit(make_job(0), deadline=1.5)
            assert isinstance(shed, GatewayOverload)
            assert shed.reason == "infeasible"

        run(scenario())

    def test_deadline_gate_prices_the_arrival(self):
        async def scenario():
            config = ServeConfig(
                num_replicas=1, slots=2, window_batches=1, deadline_gate=True
            )
            gateway = make_gateway(config=config)
            # Far too tight for a real job (service time >> 1ms).
            shed = await gateway.submit(make_job(0), deadline=0.001)
            assert isinstance(shed, GatewayOverload)
            assert shed.reason == "infeasible"
            # A generous deadline passes the same gate.
            ok = await gateway.submit(make_job(1), deadline=1000.0)
            assert isinstance(ok, GatewayTicket)

        run(scenario())

    def test_generous_deadline_is_admitted_and_met(self):
        async def scenario():
            gateway = make_gateway()
            assert isinstance(
                await gateway.submit(make_job(0), deadline=1000.0),
                GatewayTicket,
            )
            result = await gateway.drain()
            record = result.records[0]
            assert record.finish_time is not None
            assert record.finish_time <= 1000.0

        run(scenario())


class TestHoldAndCancel:
    def test_held_job_is_cancellable_released_is_not(self):
        async def scenario():
            clock = ManualClock()
            gateway = make_gateway(clock, gateway_hold=1.0)
            await gateway.submit(make_job(0))
            assert await gateway.status(0) == "held"
            clock.advance(2.0)
            # The next operation releases due holds first.
            await gateway.submit(make_job(1))
            assert await gateway.status(0) != "held"
            assert not await gateway.cancel(0)
            assert await gateway.cancel(1)
            assert await gateway.status(1) == "cancelled"

        run(scenario())

    def test_zero_hold_has_no_cancel_window(self):
        async def scenario():
            gateway = make_gateway()
            ticket = await gateway.submit(make_job(0))
            assert ticket.release_time == ticket.submit_time
            assert not await gateway.cancel(0)

        run(scenario())

    def test_cancelled_id_may_resubmit(self):
        async def scenario():
            gateway = make_gateway(gateway_hold=1.0)
            await gateway.submit(make_job(0))
            assert await gateway.cancel(0)
            retried = await gateway.submit(make_job(0))
            assert isinstance(retried, GatewayTicket)
            result = await gateway.drain()
            assert 0 in result.records

        run(scenario())

    def test_cancelled_jobs_never_reach_the_fleet(self):
        async def scenario():
            gateway = make_gateway(gateway_hold=1.0)
            await gateway.submit(make_job(0))
            await gateway.submit(make_job(1))
            assert await gateway.cancel(0)
            result = await gateway.drain()
            assert set(result.records) == {1}
            assert [job.adapter_id for job in gateway.recorded_trace()] == [1]

        run(scenario())


class TestStatusAndStreaming:
    def test_unknown_and_shed_statuses(self):
        async def scenario():
            gateway = make_gateway(gateway_rate=1.0, gateway_burst=1.0)
            assert await gateway.status(7) == "unknown"
            await gateway.submit(make_job(0))
            await gateway.submit(make_job(1))
            assert await gateway.status(1) == "shed"

        run(scenario())

    def test_full_lifecycle_reaches_finished(self):
        async def scenario():
            gateway = make_gateway()
            await gateway.submit(make_job(0))
            await gateway.drain()
            assert await gateway.status(0) == "finished"

        run(scenario())

    def test_stream_progress_emits_transitions_to_terminal(self):
        async def scenario():
            clock = ManualClock()
            gateway = make_gateway(clock, gateway_hold=1.0)
            await gateway.submit(make_job(0))

            async def driver():
                await asyncio.sleep(0)
                clock.advance(5.0)
                await gateway.drain()

            async def watcher():
                states = []
                async for state in gateway.stream_progress(0):
                    states.append(state)
                return states

            states, _ = await asyncio.gather(watcher(), driver())
            assert states[0] == "held"
            assert states[-1] == "finished"
            assert states == sorted(set(states), key=states.index)  # no dups

        run(scenario())


class TestLedger:
    def test_conservation_identities_after_drain(self):
        async def scenario():
            clock = ManualClock()
            gateway = make_gateway(
                clock,
                gateway_rate=1.0,
                gateway_burst=1.0,
                gateway_hold=0.5,
            )
            for adapter_id in range(6):
                await gateway.submit(make_job(adapter_id))
                clock.advance(0.4)
            await gateway.cancel(5)
            result = await gateway.drain()
            stats = result.stats
            assert stats.submitted == 6
            assert stats.submitted == stats.accepted + stats.shed_total()
            assert stats.accepted == stats.released + stats.cancelled
            assert stats.released == len(gateway.recorded_trace())
            assert stats.released == len(result.records)
            assert set(stats.sheds) == set(SHED_REASONS)
            return result

        result = run(scenario())
        assert isinstance(result, GatewayResult)
        assert result.fleet.gateway is result.stats

    def test_admission_latencies_cover_every_decision(self):
        async def scenario():
            gateway = make_gateway(gateway_rate=1.0, gateway_burst=1.0)
            for adapter_id in range(4):
                await gateway.submit(make_job(adapter_id))
            return await gateway.drain()

        result = run(scenario())
        stats = result.stats
        assert len(stats.admission_latencies) == stats.submitted == 4
        percentiles = result.admission_latency_percentiles()
        assert set(percentiles) == {"p50", "p90", "p99"}
        assert all(value >= 0.0 for value in percentiles.values())
        assert percentiles["p50"] <= percentiles["p99"]

    def test_drain_is_idempotent(self):
        async def scenario():
            gateway = make_gateway()
            await gateway.submit(make_job(0))
            first = await gateway.drain()
            second = await gateway.drain()
            assert first is second

        run(scenario())


class TestErrors:
    def test_duplicate_in_flight_id_raises(self):
        async def scenario():
            gateway = make_gateway()
            await gateway.submit(make_job(0))
            with pytest.raises(ScheduleError, match="already in flight"):
                await gateway.submit(make_job(0))

        run(scenario())

    def test_submit_after_drain_raises(self):
        async def scenario():
            gateway = make_gateway()
            await gateway.drain()
            with pytest.raises(ScheduleError, match="drained"):
                await gateway.submit(make_job(0))

        run(scenario())

    def test_gateway_needs_the_event_kernel(self):
        from dataclasses import replace

        from repro.serve import ReplicaSet

        executors, config = ServeConfig(num_replicas=1).build(COST, SCHED)
        lockstep = ReplicaSet(executors, replace(config, kernel="lockstep"))
        with pytest.raises(ScheduleError, match="kernel='event'"):
            ServeGateway(lockstep)

    def test_gateway_consumes_the_single_shot(self):
        executors, config = ServeConfig(num_replicas=1).build(COST, SCHED)
        from repro.serve import ReplicaSet

        replica_set = ReplicaSet(executors, config)
        ServeGateway(replica_set)
        with pytest.raises(ScheduleError, match="single-shot"):
            replica_set.run([])


class TestServeConfigWiring:
    def test_build_gateway_wires_the_limits(self):
        config = ServeConfig(
            gateway_rate=3.0,
            gateway_burst=6.0,
            gateway_queue_bound=9,
            gateway_fairness=0.5,
            gateway_hold=0.25,
        )
        gateway = config.build_gateway(COST, SCHED, clock=ManualClock())
        assert gateway.limits == GatewayLimits(
            queue_bound=9,
            rate=3.0,
            burst=6.0,
            fairness_share=0.5,
            ingress_hold=0.25,
        )

    def test_default_clock_is_wall_time(self):
        gateway = ServeConfig(num_replicas=1).build_gateway(COST, SCHED)
        assert isinstance(gateway.clock, WallClock)

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"gateway_rate": 0.0},
            {"gateway_burst": 0.0},
            {"gateway_queue_bound": 0},
            {"gateway_fairness": 2.0},
            {"gateway_hold": -1.0},
        ],
    )
    def test_invalid_gateway_knobs_are_rejected(self, kwargs):
        with pytest.raises(ScheduleError):
            ServeConfig(**kwargs)
