"""Tests for multi-replica serving: routing, rebalancing, aggregation."""

import pytest

from repro.data import synthetic_dataset
from repro.errors import ScheduleError
from repro.gpu import H100
from repro.models.config import LLAMA3_8B
from repro.models.layer_costs import LayerCostModel
from repro.scheduler import AdapterJob, SchedulerConfig, find_violations
from repro.serve import (
    OrchestratorConfig,
    ReplicaSet,
    ReplicaSetConfig,
    RoundRobinRouting,
    ServeJob,
    SlotAdmission,
    StreamingSimExecutor,
    poisson_workload,
)

DATASETS = ["xsum", "cnn_dailymail", "wikisum", "mixed"]
NUM_STAGES = 2
COST = LayerCostModel(LLAMA3_8B, H100, strategy="fused_multi")


class StickyRouting:
    """Degenerate policy pinning every tenant to replica 0 (test-only)."""

    def choose(self, job, replicas):
        return 0


def make_jobs(count, samples=16, gbs=8, seed=3):
    return [
        AdapterJob(a, synthetic_dataset(a, DATASETS[a % 4], samples, seed=seed),
                   gbs)
        for a in range(count)
    ]


def make_set(num_replicas, routing=None, threshold=None, slots=4, window=1,
             num_stages=NUM_STAGES):
    config = ReplicaSetConfig(
        orchestrator=OrchestratorConfig(
            scheduler=SchedulerConfig(capacity=8192, num_stages=num_stages,
                                      use_milp=False),
            window_batches=window,
            admission=SlotAdmission(slots) if slots else None,
        ),
        routing=routing,
        migration_threshold=threshold,
    )
    executors = [
        StreamingSimExecutor(COST, num_stages) for _ in range(num_replicas)
    ]
    return ReplicaSet(executors, config)


def poisson(jobs, rate=1.0, rng=5):
    return poisson_workload(jobs, rate=rate, rng=rng)


class TestReplicaSetServing:
    def test_all_jobs_complete_with_zero_violations(self):
        workload = poisson(make_jobs(8))
        result = make_set(2).run(workload)
        assert result.violations == 0
        for replica in make_set(2).replicas:
            assert replica.stream == []  # fresh set untouched
        for job in workload:
            record = result.records[job.adapter_id]
            assert record.finish_time is not None
            assert record.replica in (0, 1)

    def test_each_replica_stream_is_bubble_safe_and_stamped(self):
        workload = poisson(make_jobs(6))
        replica_set = make_set(3)
        replica_set.run(workload)
        for index, replica in enumerate(replica_set.replicas):
            assert find_violations(replica.stream, NUM_STAGES) == []
            assert all(mb.replica == index for mb in replica.stream)

    def test_every_sample_served_exactly_once_across_replicas(self):
        jobs = make_jobs(6, samples=12, gbs=4)
        replica_set = make_set(2)
        replica_set.run(poisson(jobs))
        for job in jobs:
            seen = sorted(
                a.sample.index
                for replica in replica_set.replicas
                for mb in replica.stream
                for a in mb.assignments
                if a.adapter_id == job.adapter_id
            )
            assert seen == list(range(len(job.dataset)))

    def test_two_replicas_beat_one_on_job_throughput(self):
        jobs = make_jobs(8)
        single = make_set(1).run(poisson(jobs))
        double = make_set(2).run(poisson(jobs))
        assert double.jobs_per_time() > single.jobs_per_time()
        assert double.makespan <= single.makespan

    def test_round_robin_spreads_tenants(self):
        workload = [
            ServeJob(job=job, arrival_time=0.0) for job in make_jobs(4)
        ]
        replica_set = make_set(2, routing=RoundRobinRouting())
        replica_set.run(workload)
        assert sorted(replica_set.router.assignments.values()) == [0, 0, 1, 1]

    def test_run_is_single_shot(self):
        workload = poisson(make_jobs(2))
        replica_set = make_set(2)
        replica_set.run(workload)
        with pytest.raises(ScheduleError, match="single-shot"):
            replica_set.run(workload)

    def test_duplicate_adapter_ids_rejected(self):
        job = make_jobs(1)[0]
        workload = [
            ServeJob(job=job, arrival_time=0.0),
            ServeJob(job=job, arrival_time=1.0),
        ]
        with pytest.raises(ScheduleError, match="duplicate"):
            make_set(2).run(workload)

    def test_zero_executors_rejected(self):
        with pytest.raises(ScheduleError, match="at least one"):
            ReplicaSet([], make_set(1).config)


class TestRebalancing:
    def sticky_workload(self):
        """One long tenant at t=0, two short ones just after.

        With sticky routing, a threshold of 8, and a depth-1 pipeline
        (every scheduled batch steps at submit, so the long job sits at a
        step boundary between waves), the two short arrivals push replica
        0's backlog to 9 while replica 1 idles; the long job's remaining
        5 batches are then the move that best evens the pair, forcing an
        *active* (state-carrying) migration.
        """
        long_job = AdapterJob(0, synthetic_dataset(0, "xsum", 12, seed=3), 2)
        shorts = [
            AdapterJob(a, synthetic_dataset(a, "xsum", 4, seed=3), 2)
            for a in (1, 2)
        ]
        return [
            ServeJob(job=long_job, arrival_time=0.0),
            ServeJob(job=shorts[0], arrival_time=0.01),
            ServeJob(job=shorts[1], arrival_time=0.01),
        ]

    def test_skew_triggers_active_migration(self):
        replica_set = make_set(2, routing=StickyRouting(), threshold=8,
                               num_stages=1)
        result = replica_set.run(self.sticky_workload())
        assert result.migrations >= 1
        migrated = [r for r in result.records.values() if r.migrations > 0]
        assert migrated and all(r.finish_time is not None for r in migrated)
        assert result.violations == 0
        # The migrated job's record lives on (and only on) its final replica.
        for record in migrated:
            assert record.replica == 1
            assert record.adapter_id in result.replicas[1].records
            assert record.adapter_id not in result.replicas[0].records

    def test_migrated_job_splits_its_stream_across_replicas(self):
        replica_set = make_set(2, routing=StickyRouting(), threshold=8,
                               num_stages=1)
        result = replica_set.run(self.sticky_workload())
        migrated = next(
            r.adapter_id for r in result.records.values() if r.migrations > 0
        )
        per_replica = []
        for replica in replica_set.replicas:
            batches = sorted(
                {
                    a.global_batch
                    for mb in replica.stream
                    for a in mb.assignments
                    if a.adapter_id == migrated
                }
            )
            per_replica.append(batches)
        assert per_replica[0] and per_replica[1]
        # Source replica ran a strict prefix of the batch indices, the
        # destination the remaining suffix -- no overlap, no gap.
        assert per_replica[0][-1] + 1 == per_replica[1][0]
        combined = per_replica[0] + per_replica[1]
        assert combined == list(range(len(combined)))

    def test_pending_jobs_reroute_before_state_moves(self):
        # All tenants equal-sized: the best skew reducer is a queue move.
        jobs = make_jobs(4, samples=8, gbs=4)
        workload = [ServeJob(job=job, arrival_time=0.0) for job in jobs]
        replica_set = make_set(2, routing=StickyRouting(), threshold=2)
        result = replica_set.run(workload)
        assert result.reroutes >= 1
        assert all(
            r.finish_time is not None for r in result.records.values()
        )

    def test_single_replica_rebalance_is_a_noop(self):
        # Edge case: with one replica there is no pair to even out, so
        # a (very trigger-happy) seconds-skew threshold never fires.
        scheduler = SchedulerConfig(capacity=8192, num_stages=NUM_STAGES,
                                    use_milp=False)
        from repro.serve import CostEstimator

        config = ReplicaSetConfig(
            orchestrator=OrchestratorConfig(
                scheduler=scheduler,
                window_batches=1,
                admission=SlotAdmission(4),
                estimator=CostEstimator.for_scheduler(COST, scheduler),
            ),
            migration_time_threshold=0.0,
            drain_then_migrate=True,
        )
        replica_set = ReplicaSet(
            [StreamingSimExecutor(COST, NUM_STAGES)], config
        )
        result = replica_set.run(poisson(make_jobs(3)))
        assert result.migrations == 0
        assert result.reroutes == 0
        assert result.rebalance_drains == 0
        assert all(r.finish_time is not None for r in result.records.values())

    def deep_pipeline_set(self, drain):
        """Two admitted jobs on replica 0, a 4-stage pipeline, no
        pendings: between steps the wave tail is always in flight, so
        without a drain nothing is migratable."""
        from repro.serve import CostEstimator

        num_stages = 4
        scheduler = SchedulerConfig(capacity=8192, num_stages=num_stages,
                                    use_milp=False)
        config = ReplicaSetConfig(
            orchestrator=OrchestratorConfig(
                scheduler=scheduler,
                window_batches=1,
                admission=SlotAdmission(2),
                estimator=CostEstimator.for_scheduler(COST, scheduler),
            ),
            routing=StickyRouting(),
            migration_time_threshold=0.05,
            drain_then_migrate=drain,
        )
        executors = [StreamingSimExecutor(COST, num_stages) for _ in range(2)]
        replica_set = ReplicaSet(executors, config)
        workload = [
            ServeJob(job=job, arrival_time=0.0)
            for job in make_jobs(2, samples=24, gbs=4)
        ]
        return replica_set, workload

    def test_deep_pipeline_falls_back_to_pending_reroutes(self):
        replica_set, workload = self.deep_pipeline_set(drain=False)
        result = replica_set.run(workload)
        # The in-flight wave tail blocks *active* migration at every
        # check, so the only rebalancing a deep pipeline gets without a
        # drain is queue moves of still-pending arrivals.
        assert result.migrations == 0
        assert result.reroutes >= 1
        assert result.rebalance_drains == 0
        assert all(r.finish_time is not None for r in result.records.values())

    def test_drain_then_migrate_unlocks_the_deep_pipeline(self):
        replica_set, workload = self.deep_pipeline_set(drain=True)
        result = replica_set.run(workload)
        assert result.rebalance_drains >= 1
        assert result.migrations >= 1
        assert result.violations == 0
        assert all(r.finish_time is not None for r in result.records.values())
        # The migrated job really finished on the other pipeline.
        assert any(r.replica == 1 for r in result.records.values())
        # Drains are *partial*: forcing only through the migrant's last
        # in-flight microbatch left other tenants' steps un-forced.
        assert result.drain_steps_saved > 0

    def test_drain_steps_saved_is_zero_without_drains(self):
        replica_set, workload = self.deep_pipeline_set(drain=False)
        result = replica_set.run(workload)
        assert result.rebalance_drains == 0
        assert result.drain_steps_saved == 0

    def test_event_counters_exposed_on_event_kernel_only(self):
        counts = {}
        for kernel in ("event", "lockstep"):
            config = ReplicaSetConfig(
                orchestrator=OrchestratorConfig(
                    scheduler=SchedulerConfig(capacity=8192,
                                              num_stages=NUM_STAGES,
                                              use_milp=False),
                    window_batches=1,
                    admission=SlotAdmission(4),
                ),
                kernel=kernel,
            )
            executors = [StreamingSimExecutor(COST, NUM_STAGES)
                         for _ in range(2)]
            result = ReplicaSet(executors, config).run(
                poisson(make_jobs(4))
            )
            counts[kernel] = result.events_processed
        assert counts["lockstep"] == {}
        assert counts["event"]["ARRIVAL"] == 4
        assert counts["event"]["WAVE_CLOSE"] > 0

    def test_unknown_kernel_rejected(self):
        config = OrchestratorConfig(
            scheduler=SchedulerConfig(capacity=8192, num_stages=NUM_STAGES,
                                      use_milp=False),
            window_batches=1,
        )
        with pytest.raises(ScheduleError, match="kernel"):
            ReplicaSetConfig(orchestrator=config, kernel="parallel")

    def test_seconds_skew_tie_picks_lowest_adapter_id(self):
        # Edge case: two migrants even the seconds gap equally well; the
        # pick must be deterministic (pending beats active, then lowest
        # adapter id) so reruns rebalance identically.
        class StubReplica:
            def __init__(self, jobs, slots_free):
                self._jobs = jobs
                self.slots_free = slots_free

            def migratable_jobs(self):
                return self._jobs

        replica_set = make_set(2)
        replica_set.replicas = [
            StubReplica(
                [
                    (7, 4, 1.0, False),  # active, evens gap to |3-2|=1
                    (3, 4, 1.0, True),   # pending, same weight: wins
                    (5, 4, 1.0, True),   # pending, same weight, higher id
                    (1, 4, 2.9, True),   # would overshoot: |3-5.8|=2.8
                ],
                slots_free=2,
            ),
            StubReplica([], slots_free=2),
        ]
        pick = replica_set._pick_migration(0, 1, skew=3.0, seconds_mode=True)
        assert pick == 3
        # Same weights, no pendings: the active tie breaks by id too.
        replica_set.replicas[0]._jobs = [
            (9, 4, 1.0, False), (6, 4, 1.0, False),
        ]
        assert replica_set._pick_migration(0, 1, 3.0, True) == 6
        # Seconds mode refuses unpriced candidates outright.
        replica_set.replicas[0]._jobs = [(2, 4, None, True)]
        assert replica_set._pick_migration(0, 1, 3.0, True) is None

    def test_time_threshold_requires_estimator(self):
        config = OrchestratorConfig(
            scheduler=SchedulerConfig(capacity=8192, num_stages=NUM_STAGES,
                                      use_milp=False),
            window_batches=1,
        )
        with pytest.raises(ScheduleError, match="estimator"):
            ReplicaSetConfig(orchestrator=config, migration_time_threshold=1.0)

    def test_drain_requires_a_trigger(self):
        config = OrchestratorConfig(
            scheduler=SchedulerConfig(capacity=8192, num_stages=NUM_STAGES,
                                      use_milp=False),
            window_batches=1,
        )
        with pytest.raises(ScheduleError, match="drain_then_migrate"):
            ReplicaSetConfig(orchestrator=config, drain_then_migrate=True)

    def test_threshold_none_never_migrates(self):
        replica_set = make_set(2, routing=StickyRouting(), threshold=None)
        result = replica_set.run(self.sticky_workload())
        assert result.migrations == 0
        assert result.reroutes == 0
        assert all(r.replica == 0 for r in result.records.values())

    def test_negative_threshold_rejected(self):
        with pytest.raises(ScheduleError, match="migration_threshold"):
            make_set(2, threshold=-1)


class TestCrossReplicaAggregation:
    @pytest.fixture(scope="class")
    def outcome(self):
        replica_set = make_set(3)
        result = replica_set.run(poisson(make_jobs(9, samples=12, gbs=4)))
        return result

    def test_records_partition_across_replicas(self, outcome):
        per_replica_ids = [set(r.records) for r in outcome.replicas]
        merged = set()
        for ids in per_replica_ids:
            assert merged.isdisjoint(ids)
            merged |= ids
        assert merged == set(outcome.records)

    def test_token_and_microbatch_totals_are_sums(self, outcome):
        assert outcome.total_tokens == sum(
            r.total_tokens for r in outcome.replicas
        )
        assert outcome.total_microbatches == sum(
            r.total_microbatches for r in outcome.replicas
        )
        assert outcome.noop_microbatches == sum(
            r.noop_microbatches for r in outcome.replicas
        )

    def test_makespan_is_the_slowest_replica(self, outcome):
        assert outcome.makespan == max(r.makespan for r in outcome.replicas)

    def test_utilization_is_makespan_weighted(self, outcome):
        weighted = sum(
            r.utilization * r.makespan for r in outcome.replicas
        )
        total = sum(r.makespan for r in outcome.replicas)
        assert outcome.utilization() == pytest.approx(weighted / total)

    def test_mean_jct_is_count_weighted(self, outcome):
        total, count = 0.0, 0
        for replica in outcome.replicas:
            times = [
                r.completion_time
                for r in replica.records.values()
                if r.completion_time is not None
            ]
            total += sum(times)
            count += len(times)
        assert outcome.mean_completion_time() == pytest.approx(total / count)

    def test_mean_queueing_delay_is_count_weighted(self, outcome):
        delays = [
            r.queueing_delay
            for replica in outcome.replicas
            for r in replica.records.values()
            if r.queueing_delay is not None
        ]
        assert outcome.mean_queueing_delay() == pytest.approx(
            sum(delays) / len(delays)
        )

    def test_throughput_uses_fleet_totals(self, outcome):
        finished = sum(
            1 for r in outcome.records.values() if r.finish_time is not None
        )
        assert outcome.jobs_per_time() == pytest.approx(
            finished / outcome.makespan
        )
        assert outcome.tokens_per_time() == pytest.approx(
            outcome.total_tokens / outcome.makespan
        )


class TestParkedLoadAccounting:
    """Regression: a parked (preempted) job's remaining work stays on the
    replica's load views -- routing and rebalancing must never treat a
    parked-heavy replica as idle."""

    @staticmethod
    def park_a_job():
        from repro.serve import CostEstimator, PriorityOrdering

        scheduler = SchedulerConfig(capacity=8192, num_stages=NUM_STAGES,
                                    use_milp=False)
        config = ReplicaSetConfig(
            orchestrator=OrchestratorConfig(
                scheduler=scheduler,
                window_batches=1,
                admission=SlotAdmission(1),
                ordering=PriorityOrdering(),  # preemptive by default
                estimator=CostEstimator.for_scheduler(COST, scheduler),
            ),
        )
        replica_set = ReplicaSet(
            [StreamingSimExecutor(COST, NUM_STAGES) for _ in range(2)],
            config,
        )
        victim, bully = make_jobs(2, samples=32)
        replica = replica_set.replicas[0]
        replica.start([])
        replica_set.replicas[1].start([])
        replica.offer(ServeJob(job=victim, arrival_time=0.0, priority=0))
        replica.offer(ServeJob(job=bully, arrival_time=0.01, priority=5))
        while replica.num_parked == 0:
            assert replica.step(), "victim never got preempted"
        return replica_set

    def test_parked_work_counts_in_views(self):
        replica_set = self.park_a_job()
        view = replica_set.views()[0]
        replica = replica_set.replicas[0]
        assert view.num_parked == 1
        assert replica.num_parked == 1
        # The parked job's remaining batches are owed here...
        parked_remaining = next(iter(replica._parked.values()))
        owed = (parked_remaining.serve_job.job.num_global_batches()
                - parked_remaining.completed)
        assert owed > 0
        active_and_pending = (
            sum(s.num_batches - s.steps_completed
                for s in replica._active.values())
            + sum(j.job.num_global_batches() for j in replica._pending)
        )
        assert view.outstanding_batches == active_and_pending + owed
        # ...and in the seconds-valued load the estimator prices.
        assert view.expected_remaining_time is not None
        lower_bound = replica.config.estimator.job_seconds(
            parked_remaining.serve_job.job, owed
        )
        assert view.expected_remaining_time >= lower_bound
        # The idle replica really does look idle by comparison.
        other = replica_set.views()[1]
        assert other.outstanding_batches == 0
        assert other.expected_remaining_time == 0.0

    def test_cost_aware_routing_avoids_parked_heavy_replica(self):
        from repro.serve import CostAwareRouting

        replica_set = self.park_a_job()
        job = ServeJob(job=make_jobs(3, samples=8)[2], arrival_time=1.0)
        choice = CostAwareRouting().choose(job, replica_set.views())
        assert choice == 1
