"""Intra-repo links in README.md/docs/*.md must resolve (the CI docs job)."""

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parents[2] / "scripts"))

from check_docs_links import (  # noqa: E402
    broken_links,
    doc_files,
    heading_anchors,
    slugify,
)


def test_docs_exist():
    names = {path.name for path in doc_files()}
    assert "README.md" in names
    assert "architecture.md" in names
    assert "serving.md" in names


def test_no_broken_intra_repo_links():
    problems = {
        str(path): broken_links(path)
        for path in doc_files()
        if broken_links(path)
    }
    assert problems == {}


class TestSlugs:
    def test_github_slug_rules(self):
        assert slugify("SLO & fairness") == "slo--fairness"
        assert slugify("One pipeline: `OnlineOrchestrator`") == (
            "one-pipeline-onlineorchestrator"
        )
        assert slugify("Window sizing") == "window-sizing"

    def test_heading_anchors_includes_duplicate_suffixes(self, tmp_path):
        doc = tmp_path / "doc.md"
        doc.write_text("# Setup\n\n## Setup\n\ntext\n")
        assert heading_anchors(doc) == {"setup", "setup-1"}

    def test_headings_inside_fences_are_ignored(self, tmp_path):
        doc = tmp_path / "doc.md"
        doc.write_text("```sh\n# not a heading\n```\n\n# Real\n")
        assert heading_anchors(doc) == {"real"}


class TestAnchorChecking:
    def test_valid_cross_file_anchor(self, tmp_path):
        (tmp_path / "target.md").write_text("# Guide\n\n## Deep Dive\n")
        source = tmp_path / "source.md"
        source.write_text("[see](target.md#deep-dive)\n")
        assert broken_links(source) == []

    def test_dangling_cross_file_anchor_flagged(self, tmp_path):
        (tmp_path / "target.md").write_text("# Guide\n")
        source = tmp_path / "source.md"
        source.write_text("[see](target.md#missing-section)\n")
        problems = broken_links(source)
        assert len(problems) == 1
        assert "dangling anchor" in problems[0][1]

    def test_in_page_anchor_checked(self, tmp_path):
        source = tmp_path / "source.md"
        source.write_text("# Top\n\n[up](#top)\n[nowhere](#absent)\n")
        problems = broken_links(source)
        assert [t for t, _ in problems] == ["#absent"]

    def test_missing_file_still_flagged(self, tmp_path):
        source = tmp_path / "source.md"
        source.write_text("[gone](nope.md#any)\n")
        problems = broken_links(source)
        assert "missing file" in problems[0][1]

    def test_non_markdown_targets_skip_anchor_check(self, tmp_path):
        (tmp_path / "script.py").write_text("x = 1\n")
        source = tmp_path / "source.md"
        source.write_text("[code](script.py#L1)\n")
        assert broken_links(source) == []
