"""Intra-repo links in README.md/docs/*.md must resolve, every
Sphinx-style code reference in docs and serve-/tune-layer docstrings
must name a real attribute, and no documented-package module may be an
orphan no doc page mentions (the CI docs job)."""

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parents[2] / "scripts"))

from check_docs_links import (  # noqa: E402
    DOCS_NAMESPACES,
    _defining_module,
    broken_links,
    broken_references,
    doc_files,
    heading_anchors,
    orphan_modules,
    reference_sources,
    referenced_modules,
    resolve_reference,
    role_references,
    slugify,
)


def test_docs_exist():
    names = {path.name for path in doc_files()}
    assert "README.md" in names
    assert "architecture.md" in names
    assert "serving.md" in names


def test_no_broken_intra_repo_links():
    problems = {
        str(path): broken_links(path)
        for path in doc_files()
        if broken_links(path)
    }
    assert problems == {}


class TestSlugs:
    def test_github_slug_rules(self):
        assert slugify("SLO & fairness") == "slo--fairness"
        assert slugify("One pipeline: `OnlineOrchestrator`") == (
            "one-pipeline-onlineorchestrator"
        )
        assert slugify("Window sizing") == "window-sizing"

    def test_heading_anchors_includes_duplicate_suffixes(self, tmp_path):
        doc = tmp_path / "doc.md"
        doc.write_text("# Setup\n\n## Setup\n\ntext\n")
        assert heading_anchors(doc) == {"setup", "setup-1"}

    def test_headings_inside_fences_are_ignored(self, tmp_path):
        doc = tmp_path / "doc.md"
        doc.write_text("```sh\n# not a heading\n```\n\n# Real\n")
        assert heading_anchors(doc) == {"real"}


class TestAnchorChecking:
    def test_valid_cross_file_anchor(self, tmp_path):
        (tmp_path / "target.md").write_text("# Guide\n\n## Deep Dive\n")
        source = tmp_path / "source.md"
        source.write_text("[see](target.md#deep-dive)\n")
        assert broken_links(source) == []

    def test_dangling_cross_file_anchor_flagged(self, tmp_path):
        (tmp_path / "target.md").write_text("# Guide\n")
        source = tmp_path / "source.md"
        source.write_text("[see](target.md#missing-section)\n")
        problems = broken_links(source)
        assert len(problems) == 1
        assert "dangling anchor" in problems[0][1]

    def test_in_page_anchor_checked(self, tmp_path):
        source = tmp_path / "source.md"
        source.write_text("# Top\n\n[up](#top)\n[nowhere](#absent)\n")
        problems = broken_links(source)
        assert [t for t, _ in problems] == ["#absent"]

    def test_missing_file_still_flagged(self, tmp_path):
        source = tmp_path / "source.md"
        source.write_text("[gone](nope.md#any)\n")
        problems = broken_links(source)
        assert "missing file" in problems[0][1]

    def test_non_markdown_targets_skip_anchor_check(self, tmp_path):
        (tmp_path / "script.py").write_text("x = 1\n")
        source = tmp_path / "source.md"
        source.write_text("[code](script.py#L1)\n")
        assert broken_links(source) == []


class TestRoleParsing:
    def test_normalizes_tilde_parens_and_explicit_targets(self):
        text = (
            "See :class:`~repro.serve.costing.CostEstimator`, "
            ":meth:`wave_seconds()`, and "
            ":meth:`the estimator <repro.serve.costing.CostEstimator>`."
        )
        assert role_references(text) == [
            ("class", "repro.serve.costing.CostEstimator"),
            ("meth", "wave_seconds"),
            ("meth", "repro.serve.costing.CostEstimator"),
        ]

    def test_joins_targets_wrapped_across_lines(self):
        text = ":meth:`~repro.serve.orchestrator.OnlineOrchestrator\n    .flush`"
        assert role_references(text) == [
            ("meth", "repro.serve.orchestrator.OnlineOrchestrator.flush")
        ]


class TestReferenceResolution:
    def test_absolute_class_and_method(self):
        assert resolve_reference(
            "class", "repro.serve.costing.CalibrationTracker", []
        ) is None
        assert resolve_reference(
            "meth", "repro.serve.costing.CalibrationTracker.observe", []
        ) is None

    def test_namespace_relative_lookup(self):
        assert resolve_reference(
            "class", "CostEstimator", ["repro.serve"]
        ) is None
        assert resolve_reference(
            "data", "CALIBRATION_TOLERANCE", ["repro.serve.costing"]
        ) is None

    def test_dataclass_fields_count_as_attributes(self):
        # Fields without defaults are not class attributes at runtime;
        # the checker must accept them anyway.
        assert resolve_reference(
            "attr", "repro.serve.router.ReplicaView.index", []
        ) is None

    def test_misspelled_reference_is_flagged(self):
        assert resolve_reference(
            "meth", "repro.serve.costing.CostEstimator.wave_secnds", []
        ) is not None
        assert resolve_reference(
            "class", "repro.serve.costing.CostEstimatr", []
        ) is not None

    def test_markdown_scanning_flags_dangling_refs(self, tmp_path):
        doc = tmp_path / "doc.md"
        doc.write_text(
            "Real: :class:`CostEstimator`.\n"
            "Rotten: :meth:`CostEstimator.no_such_method`.\n"
            "```\n:class:`InsideAFence.is_ignored`\n```\n"
        )
        problems = broken_references(doc)
        assert len(problems) == 1
        assert "no_such_method" in problems[0][0]

    def test_repo_docs_and_layer_docstrings_are_reference_clean(self):
        per_file = {
            str(path): broken_references(path)
            for path in doc_files() + reference_sources()
        }
        problems = {path: found for path, found in per_file.items() if found}
        assert problems == {}

    def test_tune_docstrings_are_among_the_checked_sources(self):
        stems = {path.parent.name for path in reference_sources()}
        assert {"serve", "tune"} <= stems


class TestOrphanModules:
    def test_defining_module_follows_reexports(self):
        # A bare name credits the module that defines it, not the
        # package __init__ that re-exports it.
        assert _defining_module("CostEstimator", DOCS_NAMESPACES) == (
            "repro.serve.costing"
        )
        assert _defining_module("canonical", DOCS_NAMESPACES) == (
            "repro.tune.pruner"
        )
        assert _defining_module("NoSuchThing", DOCS_NAMESPACES) is None

    def test_path_mentions_count_even_inside_fences(self):
        # architecture.md's data-flow diagram names modules inside a
        # code fence; those are genuine references.
        assert "repro.serve.admission" in referenced_modules()

    def test_repo_docs_reference_every_module(self):
        assert orphan_modules() == []
