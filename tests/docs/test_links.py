"""Intra-repo links in README.md/docs/*.md must resolve (the CI docs job)."""

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parents[2] / "scripts"))

from check_docs_links import broken_links, doc_files  # noqa: E402


def test_docs_exist():
    names = {path.name for path in doc_files()}
    assert "README.md" in names
    assert "architecture.md" in names
    assert "serving.md" in names


def test_no_broken_intra_repo_links():
    problems = {
        str(path): broken_links(path)
        for path in doc_files()
        if broken_links(path)
    }
    assert problems == {}
