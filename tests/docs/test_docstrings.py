"""Every ``repro.serve`` export must carry a real docstring.

The serving layer is the repository's operator-facing API surface;
``docs/costing.md`` and ``docs/serving.md`` point readers at these
docstrings for the contracts, so an undocumented export is a doc bug.
Constants (plain values cannot own docstrings at runtime) must instead
be documented with a ``#:`` comment at their definition site.
"""

import inspect
import re
from pathlib import Path

import repro.serve as serve

REPO_ROOT = Path(__file__).resolve().parents[2]


def test_every_export_resolves():
    for name in serve.__all__:
        assert hasattr(serve, name), f"__all__ names missing export {name}"


def test_every_class_and_function_export_has_a_docstring():
    for name in serve.__all__:
        obj = getattr(serve, name)
        if not (inspect.isclass(obj) or inspect.isfunction(obj)):
            continue  # constants are checked separately
        doc = inspect.getdoc(obj)
        assert doc and doc.strip(), f"export {name} has no docstring"
        # A dataclass that never wrote its own docstring gets a
        # synthesized signature string -- that is not documentation.
        assert not doc.startswith(f"{name}("), (
            f"export {name} only has the auto-generated dataclass "
            "signature as its docstring"
        )


def test_constant_exports_have_doc_comments():
    constants = [
        name
        for name in serve.__all__
        if not (
            inspect.isclass(getattr(serve, name))
            or inspect.isfunction(getattr(serve, name))
        )
    ]
    assert constants, "expected at least the calibration tolerances"
    sources = {
        path: path.read_text()
        for path in (REPO_ROOT / "src" / "repro" / "serve").glob("*.py")
    }
    for name in constants:
        documented = any(
            re.search(rf"#:.*\n(?:#:.*\n)*{re.escape(name)}\s*=", text)
            for text in sources.values()
        )
        assert documented, (
            f"constant export {name} has no '#:' doc comment at its "
            "definition site"
        )


def test_module_docstring_indexes_every_export():
    """The package docstring is the curated API index: every export
    appears in it (as a whole word -- a name nested inside another's,
    like CALIBRATION_TOLERANCE inside CORRECTED_CALIBRATION_TOLERANCE,
    does not count), so a new export cannot ship unindexed."""
    doc = serve.__doc__
    for name in serve.__all__:
        assert re.search(rf"(?<![\w_]){re.escape(name)}(?![\w_])", doc), (
            f"export {name} missing from the API index"
        )
