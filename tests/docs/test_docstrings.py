"""Every ``repro.serve`` / ``repro.tune`` export must carry a real docstring.

The serving layer and its autotuner are the repository's operator-facing
API surface; ``docs/costing.md``, ``docs/serving.md``, and
``docs/tuning.md`` point readers at these docstrings for the contracts,
so an undocumented export is a doc bug.  Constants (plain values cannot
own docstrings at runtime) must instead be documented with a ``#:``
comment at their definition site.
"""

import importlib
import inspect
import re
from pathlib import Path

import pytest

import repro.serve as serve

PACKAGES = ["repro.serve", "repro.tune"]


@pytest.fixture(params=PACKAGES)
def package(request):
    return importlib.import_module(request.param)


def test_every_export_resolves(package):
    for name in package.__all__:
        assert hasattr(package, name), f"__all__ names missing export {name}"


def test_every_class_and_function_export_has_a_docstring(package):
    for name in package.__all__:
        obj = getattr(package, name)
        if not (inspect.isclass(obj) or inspect.isfunction(obj)):
            continue  # constants are checked separately
        doc = inspect.getdoc(obj)
        assert doc and doc.strip(), f"export {name} has no docstring"
        # A dataclass that never wrote its own docstring gets a
        # synthesized signature string -- that is not documentation.
        assert not doc.startswith(f"{name}("), (
            f"export {name} only has the auto-generated dataclass "
            "signature as its docstring"
        )


def test_constant_exports_have_doc_comments(package):
    constants = [
        name
        for name in package.__all__
        if not (
            inspect.isclass(getattr(package, name))
            or inspect.isfunction(getattr(package, name))
        )
    ]
    assert constants, "expected at least one documented constant export"
    sources = {
        path: path.read_text()
        for path in Path(package.__file__).parent.glob("*.py")
    }
    for name in constants:
        documented = any(
            re.search(rf"#:.*\n(?:#:.*\n)*{re.escape(name)}\s*=", text)
            for text in sources.values()
        )
        assert documented, (
            f"constant export {name} has no '#:' doc comment at its "
            "definition site"
        )


def test_module_docstring_indexes_every_export(package):
    """The package docstring is the curated API index: every export
    appears in it (as a whole word -- a name nested inside another's,
    like CALIBRATION_TOLERANCE inside CORRECTED_CALIBRATION_TOLERANCE,
    does not count), so a new export cannot ship unindexed."""
    doc = package.__doc__
    for name in package.__all__:
        assert re.search(rf"(?<![\w_]){re.escape(name)}(?![\w_])", doc), (
            f"export {name} missing from the API index"
        )


def test_billing_fields_are_documented():
    """The elastic-billing fields must be findable from both the class
    docstring and the package API index -- they are the dollars axis
    the autotuner and the autoscale bench read off every run."""
    for name in ("gpu_seconds", "dollars_spent", "replica_intervals"):
        pattern = rf"(?<![\w_]){name}(?![\w_])"
        assert re.search(pattern, inspect.getdoc(serve.ReplicaSetResult)), (
            f"ReplicaSetResult docstring does not document {name}"
        )
        assert re.search(pattern, serve.__doc__), (
            f"serve package API index does not mention {name}"
        )
