"""Tests for the two-stage MILP bin packing (Equations 3 and 4)."""

import pytest

from repro.data.dataset import Sample
from repro.scheduler import greedy_pack, milp_pack, pack_global_batch


def entries(lengths, aid=0, batch=0):
    return [(Sample(aid, i, l), batch) for i, l in enumerate(lengths)]


def mixed_entries(spec, batch=0):
    """spec: list of (adapter_id, length)."""
    out = []
    counters = {}
    for aid, length in spec:
        idx = counters.get(aid, 0)
        counters[aid] = idx + 1
        out.append((Sample(aid, idx, length), batch))
    return out


class TestStage1:
    def test_beats_greedy_on_adversarial_instance(self):
        # Lengths (x64): [5,5,4,4,3,3] into capacity 8x64. FFD needs 4 bins
        # (5+3, 5+3, 4+4, ...) -> actually FFD: 5,5,4,4,3,3 -> [5,3],[5,3],
        # [4,4] = 3 bins; craft a case where FFD is suboptimal:
        # [7,6,5,4,3,3] cap 14: FFD -> [7,6],[5,4,3],[3] = 3 bins;
        # optimal -> [7,4,3],[6,5,3] = 2 bins.
        lengths = [l * 64 for l in (7, 6, 5, 4, 3, 3)]
        capacity = 14 * 64
        greedy = greedy_pack(entries(lengths), capacity, 64)
        assert len(greedy) == 3
        result = milp_pack(entries(lengths), capacity, 64,
                           max_bins=len(greedy), timeout=10.0)
        assert result.microbatches is not None
        assert result.num_bins == 2

    def test_single_bin_returns_none(self):
        result = milp_pack(entries([100, 100]), 1024, 64, max_bins=1)
        assert result.microbatches is None

    def test_empty_returns_none(self):
        result = milp_pack([], 1024, 64, max_bins=3)
        assert result.microbatches is None

    def test_all_samples_assigned_once(self):
        lengths = [l * 64 for l in (7, 6, 5, 4, 3, 3)]
        result = milp_pack(entries(lengths), 14 * 64, 64, max_bins=3,
                           timeout=10.0)
        placed = sorted(
            a.sample.index
            for mb in result.microbatches
            for a in mb.assignments
        )
        assert placed == list(range(6))

    def test_capacity_respected(self):
        lengths = [l * 64 for l in (7, 6, 5, 4, 3, 3)]
        result = milp_pack(entries(lengths), 14 * 64, 64, max_bins=3,
                           timeout=10.0)
        assert all(mb.padded_tokens <= 14 * 64 for mb in result.microbatches)


class TestStage2:
    def test_smallest_bin_is_last_and_minimised(self):
        # Two bins forced; stage 2 should concentrate tokens to leave the
        # final bin as empty as possible.
        lengths = [l * 64 for l in (6, 5, 3, 2)]
        capacity = 16 * 64  # everything could fit in one bin of 16
        # Force two bins by using max_bins from a capacity-8 greedy.
        greedy = greedy_pack(entries(lengths), 8 * 64, 64)
        result = milp_pack(entries(lengths), 8 * 64, 64,
                           max_bins=len(greedy), timeout=10.0)
        assert result.microbatches is not None
        sizes = [mb.padded_tokens for mb in result.microbatches]
        assert sizes == sorted(sizes, reverse=True)
        assert result.min_bin_tokens == min(sizes)

    def test_multi_adapter_padding_multiples_respected(self):
        spec = [(0, 100), (0, 60), (1, 90), (1, 130), (2, 200)]
        result = milp_pack(mixed_entries(spec), 256, 64, max_bins=4,
                           timeout=10.0)
        if result.microbatches is None:
            pytest.skip("solver declined; greedy fallback covers this")
        for mb in result.microbatches:
            assert mb.padded_tokens <= 256
            for padded in mb.padded_tokens_by_adapter().values():
                assert padded % 64 == 0


class TestAlgorithm1Selection:
    def test_pack_global_batch_prefers_strictly_better_milp(self):
        lengths = [l * 64 for l in (7, 6, 5, 4, 3, 3)]
        bins, method = pack_global_batch(entries(lengths), 14 * 64, 64,
                                         use_milp=True, milp_timeout=10.0)
        assert method == "milp"
        assert len(bins) == 2

    def test_pack_global_batch_greedy_when_disabled(self):
        bins, method = pack_global_batch(entries([100, 200]), 1024, 64,
                                         use_milp=False, milp_timeout=1.0)
        assert method == "greedy"

    def test_greedy_kept_when_milp_no_better(self):
        # Uniform items: greedy is already optimal in bins and min-bin.
        lengths = [512] * 4
        bins, method = pack_global_batch(entries(lengths), 1024, 64,
                                         use_milp=True, milp_timeout=10.0)
        assert len(bins) == 2
        # Either answer is 2 bins; Algorithm 1 line 8 prefers greedy when
        # the MILP min-bin is not strictly smaller.
        assert method == "greedy"

    def test_tiny_timeout_falls_back_to_greedy(self):
        lengths = [64 * (i % 7 + 1) for i in range(30)]
        bins, method = pack_global_batch(entries(lengths), 512, 64,
                                         use_milp=True, milp_timeout=1e-9)
        assert method == "greedy"
        assert bins
