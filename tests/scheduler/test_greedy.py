"""Tests for greedy first-fit-decreasing packing."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data.dataset import Sample
from repro.errors import CapacityError
from repro.scheduler import greedy_pack
from repro.scheduler.greedy import check_sample_fits_capacity


def entries(lengths, aid=0, batch=0):
    return [(Sample(aid, i, l), batch) for i, l in enumerate(lengths)]


class TestGreedyPack:
    def test_single_bin_when_everything_fits(self):
        bins = greedy_pack(entries([100, 200, 300]), capacity=1024,
                           padding_multiple=64)
        assert len(bins) == 1
        assert bins[0].real_tokens == 600

    def test_opens_new_bins_on_overflow(self):
        bins = greedy_pack(entries([500, 500, 500]), capacity=640,
                           padding_multiple=64)
        assert len(bins) == 3

    def test_first_fit_decreasing_beats_naive_order(self):
        # FFD packs [6,5,4,3,2,2] into capacity-8 bins optimally (3 bins);
        # in-order first-fit would need 4.
        lengths = [2, 6, 2, 5, 4, 3]
        bins = greedy_pack(entries([l * 64 for l in lengths]), capacity=512,
                           padding_multiple=64)
        assert len(bins) == 3

    def test_every_sample_placed_exactly_once(self):
        lengths = [100, 900, 450, 222, 77, 333]
        bins = greedy_pack(entries(lengths), capacity=1024, padding_multiple=64)
        placed = sorted(
            a.sample.index for mb in bins for a in mb.assignments
        )
        assert placed == list(range(len(lengths)))

    def test_oversized_sample_raises(self):
        with pytest.raises(CapacityError):
            greedy_pack(entries([2000]), capacity=1024, padding_multiple=64)

    def test_padded_sample_at_exact_capacity_ok(self):
        check_sample_fits_capacity(Sample(0, 0, 1000), 1024, 64)
        with pytest.raises(CapacityError):
            check_sample_fits_capacity(Sample(0, 0, 1025), 1024, 64)

    def test_multi_adapter_padding_respected(self):
        # Two adapters of 33 tokens each pad to 64 each = 128 > 64.
        samples = [(Sample(0, 0, 33), 0), (Sample(1, 0, 33), 0)]
        bins = greedy_pack(samples, capacity=64, padding_multiple=64)
        assert len(bins) == 2

    def test_batch_index_preserved(self):
        samples = [(Sample(0, 0, 100), 7)]
        bins = greedy_pack(samples, capacity=1024, padding_multiple=64)
        assert bins[0].assignments[0].global_batch == 7


class TestGreedyProperties:
    @given(
        lengths=st.lists(st.integers(1, 2000), min_size=1, max_size=40),
        capacity_mult=st.integers(32, 64),
    )
    @settings(max_examples=50, deadline=None)
    def test_invariants(self, lengths, capacity_mult):
        capacity = capacity_mult * 64
        lengths = [min(l, capacity) for l in lengths]
        bins = greedy_pack(entries(lengths), capacity=capacity,
                           padding_multiple=64)
        # capacity respected
        assert all(mb.padded_tokens <= capacity for mb in bins)
        # all samples placed once
        placed = sorted(a.sample.index for mb in bins for a in mb.assignments)
        assert placed == list(range(len(lengths)))
        # no empty bins
        assert all(not mb.is_noop for mb in bins)
