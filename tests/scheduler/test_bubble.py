"""Tests for bubble-lemma verification and no-op insertion."""

from repro.data.dataset import Sample
from repro.scheduler import (
    Assignment,
    Microbatch,
    dependency_gap,
    find_violations,
    insert_noops,
)


def mb_for(aid, batch, length=100):
    mb = Microbatch(capacity=1024, padding_multiple=64)
    mb.add(Assignment(Sample(aid, 0, length), batch))
    return mb


class TestDependencyGap:
    def test_at_least_one(self):
        assert dependency_gap(1) == 1

    def test_grows_with_stages(self):
        assert dependency_gap(4) == 4
        assert dependency_gap(8) == 8


class TestFindViolations:
    def test_clean_schedule_has_none(self):
        gap = dependency_gap(4)
        schedule = [mb_for(0, 0)] + [mb_for(1, 0)] * gap + [mb_for(0, 1)]
        assert find_violations(schedule, 4) == []

    def test_adjacent_batches_flagged(self):
        schedule = [mb_for(0, 0), mb_for(0, 1)]
        violations = find_violations(schedule, 4)
        assert len(violations) == 1
        v = violations[0]
        assert (v.adapter_id, v.batch) == (0, 1)
        assert v.position == 1
        assert v.required == dependency_gap(4)

    def test_different_adapters_do_not_conflict(self):
        schedule = [mb_for(0, 0), mb_for(1, 0), mb_for(0, 1, 50)]
        # adapter 0 batch 1 at position 2 needs position >= 0 + gap(4)=4.
        violations = find_violations(schedule, 4)
        assert [v.adapter_id for v in violations] == [0]

    def test_non_consecutive_batches_not_checked(self):
        # batch 0 then batch 2 (batch 1 absent): no constraint applies.
        schedule = [mb_for(0, 0), mb_for(0, 2)]
        assert find_violations(schedule, 4) == []


class TestInsertNoops:
    def test_inserts_exactly_enough(self):
        schedule = [mb_for(0, 0), mb_for(0, 1)]
        fixed, inserted = insert_noops(schedule, 4)
        assert inserted == dependency_gap(4) - 1
        assert find_violations(fixed, 4) == []

    def test_no_insertion_when_clean(self):
        gap = dependency_gap(4)
        schedule = [mb_for(0, 0)] + [mb_for(1, 0)] * gap + [mb_for(0, 1)]
        fixed, inserted = insert_noops(schedule, 4)
        assert inserted == 0
        assert len(fixed) == len(schedule)

    def test_noops_are_empty(self):
        fixed, _ = insert_noops([mb_for(0, 0), mb_for(0, 1)], 4)
        noops = [mb for mb in fixed if mb.is_noop]
        assert noops
        assert all(not mb.assignments for mb in noops)

    def test_real_microbatch_order_preserved(self):
        schedule = [mb_for(0, 0), mb_for(1, 0), mb_for(0, 1), mb_for(1, 1)]
        fixed, _ = insert_noops(schedule, 3)
        real = [mb for mb in fixed if not mb.is_noop]
        assert [
            (a.adapter_id, a.global_batch)
            for mb in real
            for a in mb.assignments
        ] == [(0, 0), (1, 0), (0, 1), (1, 1)]

    def test_single_stage_still_separates_batches(self):
        # Even without a pipeline, consecutive batches of one adapter must
        # not share a position (gap >= 1).
        schedule = [mb_for(0, 0), mb_for(0, 1)]
        fixed, inserted = insert_noops(schedule, 1)
        assert inserted == 0  # already 1 apart
        assert find_violations(fixed, 1) == []

    def test_multiple_adapters_interleaved_chain(self):
        schedule = []
        for step in range(3):
            schedule.append(mb_for(0, step))
            schedule.append(mb_for(1, step))
        fixed, inserted = insert_noops(schedule, 4)
        assert find_violations(fixed, 4) == []
        assert inserted > 0
