"""Tests for scheduler datatypes: microbatch token accounting."""

import json

import pytest

from repro.data.dataset import FinetuneDataset, Sample
from repro.errors import CapacityError, ScheduleError
from repro.scheduler import AdapterJob, Assignment, Microbatch, Schedule


def sample(aid, idx, length):
    return Sample(adapter_id=aid, index=idx, length=length)


class TestAdapterJob:
    def test_dataset_ownership_checked(self):
        ds = FinetuneDataset(1, [sample(1, 0, 100)])
        with pytest.raises(ScheduleError):
            AdapterJob(adapter_id=2, dataset=ds, global_batch_size=4)

    def test_num_global_batches(self):
        ds = FinetuneDataset(0, [sample(0, i, 10) for i in range(10)])
        job = AdapterJob(0, ds, global_batch_size=4)
        assert job.num_global_batches() == 3


class TestMicrobatchAccounting:
    def test_padding_rounds_per_adapter(self):
        mb = Microbatch(capacity=1024, padding_multiple=64)
        mb.add(Assignment(sample(0, 0, 100), 0))
        mb.add(Assignment(sample(0, 1, 27), 0))
        mb.add(Assignment(sample(1, 0, 65), 0))
        # adapter 0: 127 -> 128; adapter 1: 65 -> 128.
        assert mb.padded_tokens_by_adapter() == {0: 128, 1: 128}
        assert mb.padded_tokens == 256
        assert mb.real_tokens == 192

    def test_capacity_enforced_on_padded_tokens(self):
        mb = Microbatch(capacity=128, padding_multiple=64)
        mb.add(Assignment(sample(0, 0, 60), 0))
        # 60 real tokens pad to 64; adding a second adapter's 70 tokens
        # pads to 128 -> 192 total > 128 capacity.
        assert not mb.fits(sample(1, 0, 70))
        with pytest.raises(CapacityError):
            mb.add(Assignment(sample(1, 0, 70), 0))

    def test_same_adapter_shares_padding_slack(self):
        mb = Microbatch(capacity=128, padding_multiple=64)
        mb.add(Assignment(sample(0, 0, 60), 0))
        # Same adapter: 60 + 4 = 64 padded, no new padding granule.
        assert mb.fits(sample(0, 1, 4))

    def test_noop_detection(self):
        assert Microbatch().is_noop
        mb = Microbatch(capacity=64, padding_multiple=64)
        mb.add(Assignment(sample(0, 0, 10), 0))
        assert not mb.is_noop

    def test_shape_reports_padded_tokens_and_adapters(self):
        mb = Microbatch(capacity=1024, padding_multiple=64)
        mb.add(Assignment(sample(0, 0, 100), 0))
        mb.add(Assignment(sample(1, 0, 50), 0))
        shape = mb.shape()
        assert shape.tokens == mb.padded_tokens
        assert shape.num_adapters == 2
        assert shape.sum_sq_len == 100**2 + 50**2

    def test_batches_by_adapter(self):
        mb = Microbatch(capacity=1024, padding_multiple=64)
        mb.add(Assignment(sample(0, 0, 10), 3))
        mb.add(Assignment(sample(0, 1, 10), 4))
        mb.add(Assignment(sample(1, 0, 10), 3))
        assert mb.batches_by_adapter() == {0: {3, 4}, 1: {3}}


class TestSchedule:
    def test_adapter_sample_order(self):
        mb1 = Microbatch(capacity=256, padding_multiple=64)
        mb1.add(Assignment(sample(0, 1, 10), 0))
        mb2 = Microbatch(capacity=256, padding_multiple=64)
        mb2.add(Assignment(sample(0, 5, 10), 1))
        schedule = Schedule(microbatches=[mb1, mb2])
        assert schedule.adapter_sample_order(0) == [(0, 1), (1, 5)]
        assert schedule.adapter_sample_order(9) == []

    def test_token_totals(self):
        mb = Microbatch(capacity=256, padding_multiple=64)
        mb.add(Assignment(sample(0, 0, 100), 0))
        schedule = Schedule(microbatches=[mb, Microbatch()])
        assert schedule.total_tokens == 100
        assert schedule.total_padded_tokens == 128
        assert len(schedule) == 2


class TestScheduleSerialization:
    def make_schedule(self):
        mb1 = Microbatch(capacity=256, padding_multiple=64, group=1, step=2,
                         plan_id=3, replica=2)
        mb1.add(Assignment(sample(0, 4, 100), 2))
        mb1.add(Assignment(sample(1, 0, 40), 2))
        noop = Microbatch(capacity=256, padding_multiple=64, plan_id=3,
                          replica=2)
        return Schedule(
            microbatches=[mb1, noop],
            num_stages=4,
            stats={"merges": 1.0, "noops_inserted": 1.0},
        )

    def test_round_trip_through_json(self):
        schedule = self.make_schedule()
        rebuilt = Schedule.from_dict(json.loads(json.dumps(schedule.to_dict())))
        assert rebuilt.num_stages == schedule.num_stages
        assert rebuilt.stats == schedule.stats
        assert len(rebuilt) == len(schedule)
        for original, copy in zip(schedule.microbatches, rebuilt.microbatches):
            assert copy.capacity == original.capacity
            assert copy.padding_multiple == original.padding_multiple
            assert (copy.group, copy.step, copy.plan_id, copy.replica) == (
                original.group, original.step, original.plan_id,
                original.replica,
            )
            assert copy.padded_tokens == original.padded_tokens
            assert [
                (a.adapter_id, a.sample.index, a.length, a.global_batch)
                for a in copy.assignments
            ] == [
                (a.adapter_id, a.sample.index, a.length, a.global_batch)
                for a in original.assignments
            ]

    def test_round_trip_preserves_noops(self):
        rebuilt = Schedule.from_dict(self.make_schedule().to_dict())
        assert rebuilt.microbatches[1].is_noop

    def test_missing_plan_id_defaults_to_zero(self):
        payload = self.make_schedule().to_dict()
        for entry in payload["microbatches"]:
            del entry["plan_id"]
        rebuilt = Schedule.from_dict(payload)
        assert all(mb.plan_id == 0 for mb in rebuilt.microbatches)

    def test_missing_replica_defaults_to_zero(self):
        # Dumps that predate multi-replica serving stay loadable.
        payload = self.make_schedule().to_dict()
        for entry in payload["microbatches"]:
            del entry["replica"]
        rebuilt = Schedule.from_dict(payload)
        assert all(mb.replica == 0 for mb in rebuilt.microbatches)
