"""Tests for scheduler datatypes: microbatch token accounting."""

import pytest

from repro.data.dataset import FinetuneDataset, Sample
from repro.errors import CapacityError, ScheduleError
from repro.scheduler import AdapterJob, Assignment, Microbatch, Schedule


def sample(aid, idx, length):
    return Sample(adapter_id=aid, index=idx, length=length)


class TestAdapterJob:
    def test_dataset_ownership_checked(self):
        ds = FinetuneDataset(1, [sample(1, 0, 100)])
        with pytest.raises(ScheduleError):
            AdapterJob(adapter_id=2, dataset=ds, global_batch_size=4)

    def test_num_global_batches(self):
        ds = FinetuneDataset(0, [sample(0, i, 10) for i in range(10)])
        job = AdapterJob(0, ds, global_batch_size=4)
        assert job.num_global_batches() == 3


class TestMicrobatchAccounting:
    def test_padding_rounds_per_adapter(self):
        mb = Microbatch(capacity=1024, padding_multiple=64)
        mb.add(Assignment(sample(0, 0, 100), 0))
        mb.add(Assignment(sample(0, 1, 27), 0))
        mb.add(Assignment(sample(1, 0, 65), 0))
        # adapter 0: 127 -> 128; adapter 1: 65 -> 128.
        assert mb.padded_tokens_by_adapter() == {0: 128, 1: 128}
        assert mb.padded_tokens == 256
        assert mb.real_tokens == 192

    def test_capacity_enforced_on_padded_tokens(self):
        mb = Microbatch(capacity=128, padding_multiple=64)
        mb.add(Assignment(sample(0, 0, 60), 0))
        # 60 real tokens pad to 64; adding a second adapter's 70 tokens
        # pads to 128 -> 192 total > 128 capacity.
        assert not mb.fits(sample(1, 0, 70))
        with pytest.raises(CapacityError):
            mb.add(Assignment(sample(1, 0, 70), 0))

    def test_same_adapter_shares_padding_slack(self):
        mb = Microbatch(capacity=128, padding_multiple=64)
        mb.add(Assignment(sample(0, 0, 60), 0))
        # Same adapter: 60 + 4 = 64 padded, no new padding granule.
        assert mb.fits(sample(0, 1, 4))

    def test_noop_detection(self):
        assert Microbatch().is_noop
        mb = Microbatch(capacity=64, padding_multiple=64)
        mb.add(Assignment(sample(0, 0, 10), 0))
        assert not mb.is_noop

    def test_shape_reports_padded_tokens_and_adapters(self):
        mb = Microbatch(capacity=1024, padding_multiple=64)
        mb.add(Assignment(sample(0, 0, 100), 0))
        mb.add(Assignment(sample(1, 0, 50), 0))
        shape = mb.shape()
        assert shape.tokens == mb.padded_tokens
        assert shape.num_adapters == 2
        assert shape.sum_sq_len == 100**2 + 50**2

    def test_batches_by_adapter(self):
        mb = Microbatch(capacity=1024, padding_multiple=64)
        mb.add(Assignment(sample(0, 0, 10), 3))
        mb.add(Assignment(sample(0, 1, 10), 4))
        mb.add(Assignment(sample(1, 0, 10), 3))
        assert mb.batches_by_adapter() == {0: {3, 4}, 1: {3}}


class TestSchedule:
    def test_adapter_sample_order(self):
        mb1 = Microbatch(capacity=256, padding_multiple=64)
        mb1.add(Assignment(sample(0, 1, 10), 0))
        mb2 = Microbatch(capacity=256, padding_multiple=64)
        mb2.add(Assignment(sample(0, 5, 10), 1))
        schedule = Schedule(microbatches=[mb1, mb2])
        assert schedule.adapter_sample_order(0) == [(0, 1), (1, 5)]
        assert schedule.adapter_sample_order(9) == []

    def test_token_totals(self):
        mb = Microbatch(capacity=256, padding_multiple=64)
        mb.add(Assignment(sample(0, 0, 100), 0))
        schedule = Schedule(microbatches=[mb, Microbatch()])
        assert schedule.total_tokens == 100
        assert schedule.total_padded_tokens == 128
        assert len(schedule) == 2
