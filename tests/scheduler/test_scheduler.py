"""End-to-end tests for the multi-LoRA scheduler."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data import synthetic_dataset
from repro.data.dataset import FinetuneDataset, Sample
from repro.errors import ScheduleError
from repro.scheduler import (
    AdapterJob,
    MultiLoRAScheduler,
    SchedulerConfig,
    dependency_gap,
    find_violations,
)


def make_jobs(num_adapters=4, samples=32, gbs=8, datasets=None, seed=1):
    datasets = datasets or ["xsum", "cnn_dailymail", "wikisum", "mixed"]
    return [
        AdapterJob(a, synthetic_dataset(a, datasets[a % len(datasets)],
                                        samples, seed=seed), gbs)
        for a in range(num_adapters)
    ]


def fast_config(**overrides):
    defaults = dict(capacity=8192, padding_multiple=64, num_stages=4,
                    use_milp=False)
    defaults.update(overrides)
    return SchedulerConfig(**defaults)


class TestConfigValidation:
    def test_capacity_multiple_of_padding(self):
        with pytest.raises(ScheduleError):
            SchedulerConfig(capacity=1000, padding_multiple=64)

    def test_auto_group_size(self):
        cfg = SchedulerConfig(capacity=8192)
        assert cfg.resolved_group_size(1) == 1
        assert cfg.resolved_group_size(2) == 1
        assert cfg.resolved_group_size(3) == 1
        assert cfg.resolved_group_size(4) == 2
        assert cfg.resolved_group_size(8) == 4

    def test_explicit_group_size_wins(self):
        cfg = SchedulerConfig(capacity=8192, group_size=3)
        assert cfg.resolved_group_size(8) == 3

    def test_duplicate_jobs_rejected(self):
        jobs = make_jobs(2)
        dup = [jobs[0], jobs[0]]
        with pytest.raises(ScheduleError):
            MultiLoRAScheduler(dup, fast_config())


class TestScheduleInvariants:
    @pytest.fixture(scope="class")
    def schedule(self):
        jobs = make_jobs()
        return jobs, MultiLoRAScheduler(jobs, fast_config()).schedule()

    def test_every_sample_scheduled_exactly_once(self, schedule):
        jobs, sched = schedule
        for job in jobs:
            seen = sorted(
                a.sample.index
                for mb in sched.microbatches
                for a in mb.assignments
                if a.adapter_id == job.adapter_id
            )
            assert seen == list(range(len(job.dataset)))

    def test_capacity_respected(self, schedule):
        _, sched = schedule
        for mb in sched.microbatches:
            assert mb.padded_tokens <= 8192

    def test_bubble_lemma_holds(self, schedule):
        _, sched = schedule
        assert find_violations(sched.microbatches, 4) == []

    def test_global_batch_order_preserved_per_adapter(self, schedule):
        jobs, sched = schedule
        for job in jobs:
            batches = [b for b, _ in sched.adapter_sample_order(job.adapter_id)]
            assert batches == sorted(batches)

    def test_samples_carry_correct_batch_index(self, schedule):
        jobs, sched = schedule
        for job in jobs:
            gbs = job.global_batch_size
            for mb in sched.microbatches:
                for a in mb.assignments:
                    if a.adapter_id == job.adapter_id:
                        assert a.global_batch == a.sample.index // gbs

    def test_stats_populated(self, schedule):
        _, sched = schedule
        stats = sched.stats
        assert stats["groups"] == 2.0
        assert stats["packing_tasks"] > 0
        assert stats["microbatches"] == len(sched)
        assert stats["tuning_seconds"] > 0


class TestMILPPath:
    def test_milp_selected_for_some_batches(self):
        jobs = make_jobs(samples=16, gbs=8)
        sched = MultiLoRAScheduler(
            jobs, fast_config(use_milp=True, milp_timeout=2.0, capacity=4096)
        ).schedule()
        assert sched.stats["milp_selected_frac"] >= 0.0
        assert find_violations(sched.microbatches, 4) == []

    def test_milp_never_uses_more_microbatches_than_greedy(self):
        jobs = make_jobs(samples=16, gbs=8)
        greedy = MultiLoRAScheduler(jobs, fast_config(capacity=4096,
                                                      use_merge=False)).schedule()
        milp = MultiLoRAScheduler(
            jobs, fast_config(use_milp=True, milp_timeout=2.0, capacity=4096,
                              use_merge=False)
        ).schedule()
        assert len(milp) <= len(greedy)


class TestParallelPacking:
    def test_multiprocessing_matches_inline(self):
        jobs = make_jobs(samples=16, gbs=8)
        inline = MultiLoRAScheduler(jobs, fast_config()).schedule()
        parallel = MultiLoRAScheduler(jobs, fast_config(max_workers=2)).schedule()
        assert len(inline) == len(parallel)
        for a, b in zip(inline.microbatches, parallel.microbatches):
            key = lambda mb: sorted(
                (x.adapter_id, x.sample.index) for x in mb.assignments
            )
            assert key(a) == key(b)


def microbatch_stream_key(schedule):
    """The schedule's observable stream: exact assignments in order."""
    return [
        [
            (a.adapter_id, a.sample.index, a.global_batch)
            for a in mb.assignments
        ]
        for mb in schedule.microbatches
    ]


def comparable_stats(schedule):
    return {k: v for k, v in schedule.stats.items() if k != "tuning_seconds"}


class TestDeterminism:
    @pytest.mark.parametrize("workers", [0, 2])
    def test_same_jobs_same_config_same_stream(self, workers):
        config = fast_config(max_workers=workers)
        first = MultiLoRAScheduler(make_jobs(samples=16, gbs=8),
                                   config).schedule()
        second = MultiLoRAScheduler(make_jobs(samples=16, gbs=8),
                                    config).schedule()
        assert microbatch_stream_key(first) == microbatch_stream_key(second)
        assert comparable_stats(first) == comparable_stats(second)

    def test_workers_do_not_change_the_stream(self):
        inline = MultiLoRAScheduler(
            make_jobs(samples=16, gbs=8), fast_config(max_workers=0)
        ).schedule()
        parallel = MultiLoRAScheduler(
            make_jobs(samples=16, gbs=8), fast_config(max_workers=3)
        ).schedule()
        assert microbatch_stream_key(inline) == microbatch_stream_key(parallel)
        assert comparable_stats(inline) == comparable_stats(parallel)

    def test_deterministic_with_milp_and_merge(self):
        config = fast_config(use_milp=True, milp_timeout=2.0)
        runs = [
            MultiLoRAScheduler(make_jobs(samples=12, gbs=6), config).schedule()
            for _ in range(2)
        ]
        assert microbatch_stream_key(runs[0]) == microbatch_stream_key(runs[1])
        assert comparable_stats(runs[0]) == comparable_stats(runs[1])


class TestTwoPhaseAPI:
    def test_plan_then_assemble_equals_schedule(self):
        scheduler = MultiLoRAScheduler(make_jobs(samples=16, gbs=8),
                                       fast_config())
        phased = scheduler.assemble(scheduler.plan_step())
        direct = MultiLoRAScheduler(make_jobs(samples=16, gbs=8),
                                    fast_config()).schedule()
        assert microbatch_stream_key(phased) == microbatch_stream_key(direct)
        assert comparable_stats(phased) == comparable_stats(direct)

    def test_explicit_groups_are_respected(self):
        jobs = make_jobs(4, samples=16, gbs=8)
        scheduler = MultiLoRAScheduler(jobs, fast_config())
        groups = [[jobs[0], jobs[3]], [jobs[1], jobs[2]]]
        plan = scheduler.plan_step(groups=groups)
        assert plan.groups == groups
        schedule = scheduler.assemble(plan)
        assert schedule.stats["groups"] == 2.0
        assert find_violations(schedule.microbatches, 4) == []

    def test_groups_must_cover_all_jobs(self):
        jobs = make_jobs(4, samples=16, gbs=8)
        scheduler = MultiLoRAScheduler(jobs, fast_config())
        with pytest.raises(ScheduleError, match="groups cover"):
            scheduler.plan_step(groups=[[jobs[0], jobs[1]]])  # 2 and 3 missing
        with pytest.raises(ScheduleError, match="groups cover"):
            scheduler.plan_step(groups=[[jobs[0], jobs[1]],
                                        [jobs[2], jobs[3], jobs[0]]])

    def test_batch_offset_shifts_global_batch_labels(self):
        jobs = make_jobs(2, samples=8, gbs=4)
        offset_jobs = [
            AdapterJob(j.adapter_id, j.dataset, j.global_batch_size,
                       batch_offset=5)
            for j in jobs
        ]
        schedule = MultiLoRAScheduler(offset_jobs, fast_config()).schedule()
        labels = {
            a.global_batch
            for mb in schedule.microbatches
            for a in mb.assignments
        }
        assert labels == {5, 6}
        # Batch indices still map to sample positions within the window.
        for job in offset_jobs:
            for mb in schedule.microbatches:
                for a in mb.assignments:
                    if a.adapter_id == job.adapter_id:
                        expected = 5 + a.sample.index // job.global_batch_size
                        assert a.global_batch == expected


class TestSingleJob:
    def test_single_adapter_gets_noops(self):
        # With one adapter there is no other group to fill the dependency
        # gap, so no-ops appear -- the Figure 20 "1 adapter" scenario.
        jobs = make_jobs(1, samples=16, gbs=4, datasets=["cnn_dailymail"])
        sched = MultiLoRAScheduler(jobs, fast_config(capacity=2048)).schedule()
        assert sched.stats["noops_inserted"] > 0
        assert find_violations(sched.microbatches, 4) == []


class TestPropertyBased:
    @given(
        num_adapters=st.integers(1, 5),
        gbs=st.integers(2, 8),
        samples=st.integers(4, 20),
        stages=st.sampled_from([1, 2, 4]),
        seed=st.integers(0, 100),
    )
    @settings(max_examples=25, deadline=None)
    def test_schedule_invariants_hold_for_random_workloads(
        self, num_adapters, gbs, samples, stages, seed
    ):
        jobs = make_jobs(num_adapters, samples=samples, gbs=gbs, seed=seed)
        config = SchedulerConfig(capacity=8192, num_stages=stages,
                                 use_milp=False)
        sched = MultiLoRAScheduler(jobs, config).schedule()
        assert find_violations(sched.microbatches, stages) == []
        for job in jobs:
            seen = sorted(
                a.sample.index
                for mb in sched.microbatches
                for a in mb.assignments
                if a.adapter_id == job.adapter_id
            )
            assert seen == list(range(samples))
            batches = [b for b, _ in sched.adapter_sample_order(job.adapter_id)]
            assert batches == sorted(batches)
        assert all(mb.padded_tokens <= 8192 for mb in sched.microbatches)
