"""Tests for head-tail adapter grouping."""

import pytest

from repro.data.dataset import FinetuneDataset, Sample
from repro.errors import ScheduleError
from repro.scheduler import AdapterJob, head_tail_groups


def job(aid, mean_length, count=8):
    samples = [Sample(aid, i, mean_length) for i in range(count)]
    return AdapterJob(aid, FinetuneDataset(aid, samples), global_batch_size=4)


class TestHeadTailGroups:
    def test_four_jobs_pair_short_with_long(self):
        jobs = [job(0, 400), job(1, 900), job(2, 2000), job(3, 1200)]
        groups = head_tail_groups(jobs, group_size=2)
        assert len(groups) == 2
        # First group: shortest (400) with longest (2000).
        ids = [{j.adapter_id for j in g} for g in groups]
        assert {0, 2} in ids
        assert {1, 3} in ids

    def test_group_members_sorted_short_first(self):
        jobs = [job(0, 2000), job(1, 400)]
        groups = head_tail_groups(jobs, group_size=2)
        assert [j.adapter_id for j in groups[0]] == [1, 0]

    def test_odd_job_count(self):
        jobs = [job(i, 100 * (i + 1)) for i in range(5)]
        groups = head_tail_groups(jobs, group_size=2)
        assert sum(len(g) for g in groups) == 5
        assert len(groups) == 3

    def test_group_size_one(self):
        jobs = [job(0, 400), job(1, 900)]
        groups = head_tail_groups(jobs, group_size=1)
        assert [len(g) for g in groups] == [1, 1]

    def test_every_job_appears_exactly_once(self):
        jobs = [job(i, 100 + 37 * i) for i in range(7)]
        groups = head_tail_groups(jobs, group_size=3)
        ids = sorted(j.adapter_id for g in groups for j in g)
        assert ids == list(range(7))

    def test_empty_jobs_rejected(self):
        with pytest.raises(ScheduleError):
            head_tail_groups([], 2)

    def test_duplicate_ids_rejected(self):
        with pytest.raises(ScheduleError):
            head_tail_groups([job(0, 100), job(0, 200)], 2)

    def test_bad_group_size_rejected(self):
        with pytest.raises(ScheduleError):
            head_tail_groups([job(0, 100)], 0)
