"""Tests for head-tail, knapsack, and sticky adapter grouping."""

import pytest

from repro.data.dataset import FinetuneDataset, Sample
from repro.errors import ScheduleError
from repro.scheduler import (
    AdapterJob,
    StickyGrouper,
    head_tail_groups,
    knapsack_groups,
)


def job(aid, mean_length, count=8):
    samples = [Sample(aid, i, mean_length) for i in range(count)]
    return AdapterJob(aid, FinetuneDataset(aid, samples), global_batch_size=4)


class TestHeadTailGroups:
    def test_four_jobs_pair_short_with_long(self):
        jobs = [job(0, 400), job(1, 900), job(2, 2000), job(3, 1200)]
        groups = head_tail_groups(jobs, group_size=2)
        assert len(groups) == 2
        # First group: shortest (400) with longest (2000).
        ids = [{j.adapter_id for j in g} for g in groups]
        assert {0, 2} in ids
        assert {1, 3} in ids

    def test_group_members_sorted_short_first(self):
        jobs = [job(0, 2000), job(1, 400)]
        groups = head_tail_groups(jobs, group_size=2)
        assert [j.adapter_id for j in groups[0]] == [1, 0]

    def test_odd_job_count(self):
        jobs = [job(i, 100 * (i + 1)) for i in range(5)]
        groups = head_tail_groups(jobs, group_size=2)
        assert sum(len(g) for g in groups) == 5
        assert len(groups) == 3

    def test_group_size_one(self):
        jobs = [job(0, 400), job(1, 900)]
        groups = head_tail_groups(jobs, group_size=1)
        assert [len(g) for g in groups] == [1, 1]

    def test_every_job_appears_exactly_once(self):
        jobs = [job(i, 100 + 37 * i) for i in range(7)]
        groups = head_tail_groups(jobs, group_size=3)
        ids = sorted(j.adapter_id for g in groups for j in g)
        assert ids == list(range(7))

    def test_empty_jobs_rejected(self):
        with pytest.raises(ScheduleError):
            head_tail_groups([], 2)

    def test_duplicate_ids_rejected(self):
        with pytest.raises(ScheduleError):
            head_tail_groups([job(0, 100), job(0, 200)], 2)

    def test_bad_group_size_rejected(self):
        with pytest.raises(ScheduleError):
            head_tail_groups([job(0, 100)], 0)

    def test_oversized_group_size_clamps_to_live_set(self):
        # A fleet-default group_size outliving a shrunken live set must
        # yield one group holding every job -- not quietly degenerate or
        # raise mid-run.
        jobs = [job(0, 400), job(1, 900)]
        groups = head_tail_groups(jobs, group_size=5)
        assert [[j.adapter_id for j in g] for g in groups] == [[0, 1]]


class TestKnapsackGroups:
    def test_groups_fill_capacity_tightly(self):
        # Masses (gbs 4, P 64): 4096, 4096, 8192, 2048 against 8192.
        jobs = [job(0, 1024), job(1, 1024), job(2, 2048), job(3, 512)]
        groups = knapsack_groups(jobs, capacity=8192)
        assert [[j.adapter_id for j in g] for g in groups] == [
            [2],
            [0, 1],
            [3],
        ]

    def test_every_job_appears_exactly_once(self):
        jobs = [job(i, 100 + 211 * i) for i in range(7)]
        groups = knapsack_groups(jobs, capacity=8192)
        ids = sorted(j.adapter_id for g in groups for j in g)
        assert ids == list(range(7))

    def test_members_sorted_short_first(self):
        jobs = [job(0, 900), job(1, 400)]
        groups = knapsack_groups(jobs, capacity=8192)
        assert [j.adapter_id for j in groups[0]] == [1, 0]

    def test_deterministic_under_input_order(self):
        jobs = [job(i, 100 + 211 * i) for i in range(6)]
        forward = knapsack_groups(jobs, capacity=8192)
        backward = knapsack_groups(list(reversed(jobs)), capacity=8192)
        layout = [[j.adapter_id for j in g] for g in forward]
        assert layout == [[j.adapter_id for j in g] for g in backward]

    def test_heavy_job_clamps_to_capacity(self):
        # A job whose padded mass exceeds capacity still packs (alone).
        jobs = [job(0, 5000), job(1, 100)]
        groups = knapsack_groups(jobs, capacity=8192)
        ids = sorted(j.adapter_id for g in groups for j in g)
        assert ids == [0, 1]

    def test_empty_jobs_rejected(self):
        with pytest.raises(ScheduleError):
            knapsack_groups([], capacity=8192)

    def test_duplicate_ids_rejected(self):
        with pytest.raises(ScheduleError):
            knapsack_groups([job(0, 100), job(0, 200)], capacity=8192)

    def test_bad_capacity_rejected(self):
        with pytest.raises(ScheduleError):
            knapsack_groups([job(0, 100)], capacity=0)


class TestStickyGrouper:
    def layout(self, groups):
        return [[j.adapter_id for j in g] for g in groups]

    def test_same_membership_replays_the_cached_layout(self):
        grouper = StickyGrouper()
        first = grouper.groups_for(
            [job(0, 1024), job(1, 1024), job(2, 2048)], capacity=8192
        )
        # Next wave: same ids, different windowed lengths and order --
        # the id layout must not move.
        second = grouper.groups_for(
            [job(2, 100), job(0, 3000), job(1, 200)], capacity=8192
        )
        assert self.layout(second) == self.layout(first)

    def test_fresh_objects_are_mapped_onto_the_layout(self):
        grouper = StickyGrouper()
        grouper.groups_for([job(0, 1024), job(1, 512)], capacity=8192)
        fresh = [job(0, 700), job(1, 900)]
        replay = grouper.groups_for(fresh, capacity=8192)
        replayed = {j.adapter_id: j for g in replay for j in g}
        assert replayed[0] is fresh[0]
        assert replayed[1] is fresh[1]

    def test_membership_change_recomputes(self):
        grouper = StickyGrouper()
        grouper.groups_for([job(0, 1024), job(1, 1024)], capacity=8192)
        grown = grouper.groups_for(
            [job(0, 1024), job(1, 1024), job(2, 2048)], capacity=8192
        )
        assert sorted(j.adapter_id for g in grown for j in g) == [0, 1, 2]
        # And the original membership still replays its own layout.
        shrunk = grouper.groups_for([job(0, 99), job(1, 1)], capacity=8192)
        assert sorted(j.adapter_id for g in shrunk for j in g) == [0, 1]

    def test_duplicate_ids_rejected(self):
        grouper = StickyGrouper()
        with pytest.raises(ScheduleError):
            grouper.groups_for([job(0, 100), job(0, 200)], capacity=8192)
