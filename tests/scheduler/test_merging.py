"""Tests for the cross-batch merge pass."""

from repro.data.dataset import Sample
from repro.scheduler import Assignment, Microbatch, find_violations, merge_pass


def make_mb(entries, group, step, capacity=1024):
    mb = Microbatch(capacity=capacity, padding_multiple=64, group=group,
                    step=step)
    for aid, idx, length, batch in entries:
        mb.add(Assignment(Sample(aid, idx, length), batch))
    return mb


class TestMergePass:
    def test_merges_small_next_batch_bin_into_underfilled_tail(self):
        # Group 0 step 0: two bins with room; step 1: a full bin and a tiny
        # one.  Single-stage pipeline (gap 1): the tiny step-1 bin can merge
        # back into step 0's tail as long as it lands after step 0.
        schedule = [
            make_mb([(0, 0, 900, 0)], 0, 0),
            make_mb([(0, 1, 100, 0)], 0, 0),
            make_mb([(0, 2, 900, 1)], 0, 1),
            make_mb([(0, 3, 100, 1)], 0, 1),
        ]
        merged, merges = merge_pass(schedule, num_stages=1)
        # gap(1) = 1: a batch-1 sample may not move to a position <=
        # last(batch 0); targets are batch-0 positions, so nothing merges
        # for the same adapter at gap >= 1 unless the adapter's batch-0
        # samples end earlier than the target.
        assert merges == 0
        assert len(merged) == 4

    def test_merge_happens_when_gap_allows(self):
        # Adapter 0's batch-0 samples end early; adapter 1 occupies the
        # tail positions.  A small batch-1 bin of adapter 0 can then merge
        # into the final step-0 microbatch.
        schedule = [
            make_mb([(0, 0, 900, 0)], 0, 0),
            make_mb([(1, 0, 900, 0)], 0, 0),
            make_mb([(1, 1, 100, 0)], 0, 0),
            make_mb([(0, 1, 100, 1), (1, 2, 64, 1)], 0, 1),
            make_mb([(0, 2, 900, 1)], 0, 1),
        ]
        merged, merges = merge_pass(schedule, num_stages=2)
        if merges:
            assert len(merged) == len(schedule) - merges
            assert find_violations(merged, 2) == []

    def test_never_dissolves_last_region_bin(self):
        schedule = [
            make_mb([(0, 0, 100, 0)], 0, 0),
            make_mb([(0, 1, 100, 1)], 0, 1),
        ]
        merged, merges = merge_pass(schedule, num_stages=1)
        assert merges == 0
        assert len(merged) == 2

    def test_capacity_blocks_merge(self):
        schedule = [
            make_mb([(0, 0, 1000, 0)], 0, 0),
            make_mb([(1, 0, 1000, 0)], 0, 0),
            make_mb([(1, 1, 1000, 1)], 0, 1),
            make_mb([(1, 2, 1000, 1)], 0, 1),
        ]
        merged, merges = merge_pass(schedule, num_stages=1)
        assert merges == 0

    def test_total_samples_preserved(self):
        schedule = [
            make_mb([(0, 0, 800, 0)], 0, 0),
            make_mb([(1, 0, 800, 0)], 0, 0),
            make_mb([(1, 1, 64, 0)], 0, 0),
            make_mb([(0, 1, 64, 1)], 0, 1),
            make_mb([(0, 2, 800, 1)], 0, 1),
        ]
        before = sorted(
            (a.adapter_id, a.sample.index, a.global_batch)
            for mb in schedule
            for a in mb.assignments
        )
        merged, _ = merge_pass(schedule, num_stages=2)
        after = sorted(
            (a.adapter_id, a.sample.index, a.global_batch)
            for mb in merged
            for a in mb.assignments
        )
        assert after == before

    def test_merged_samples_keep_global_batch_index(self):
        schedule = [
            make_mb([(0, 0, 800, 0)], 0, 0),
            make_mb([(1, 0, 800, 0)], 0, 0),
            make_mb([(1, 1, 64, 0)], 0, 0),
            make_mb([(0, 1, 64, 1)], 0, 1),
            make_mb([(0, 2, 800, 1)], 0, 1),
        ]
        merged, merges = merge_pass(schedule, num_stages=2)
        batches_of_adapter0 = sorted(
            a.global_batch
            for mb in merged
            for a in mb.assignments
            if a.adapter_id == 0
        )
        assert batches_of_adapter0 == [0, 1, 1]
