"""Tests for the adapter-only AdamW optimizer."""

import numpy as np
import pytest

from repro.core.lora import LoRAConfig, LoRAWeights
from repro.runtime import AdamWConfig, AdapterOptimizer


def make_params(seed=0):
    rng = np.random.default_rng(seed)
    cfg = LoRAConfig(rank=2, alpha=1.0, dropout=0.0)
    return {
        (0, "q_proj"): LoRAWeights(
            a=rng.standard_normal((4, 2)), b=rng.standard_normal((2, 4)),
            config=cfg,
        )
    }


def grads_like(params, value=0.1):
    return {
        key: {"a": np.full_like(w.a, value), "b": np.full_like(w.b, value)}
        for key, w in params.items()
    }


class TestAdamW:
    def test_first_step_moves_by_lr(self):
        params = make_params()
        before = params[(0, "q_proj")].a.copy()
        opt = AdapterOptimizer(params, AdamWConfig(lr=1e-3))
        opt.step(grads_like(params))
        # Bias-corrected first Adam step has magnitude ~lr.
        delta = params[(0, "q_proj")].a - before
        np.testing.assert_allclose(np.abs(delta), 1e-3, rtol=1e-4)

    def test_deterministic(self):
        results = []
        for _ in range(2):
            params = make_params()
            opt = AdapterOptimizer(params, AdamWConfig())
            for step in range(5):
                opt.step(grads_like(params, value=0.1 * (step + 1)))
            results.append(params[(0, "q_proj")].a.copy())
        np.testing.assert_array_equal(results[0], results[1])

    def test_weight_decay_shrinks_params(self):
        params_wd = make_params()
        params_plain = make_params()
        AdapterOptimizer(params_wd, AdamWConfig(weight_decay=0.1)).step(
            grads_like(params_wd, 0.0)
        )
        AdapterOptimizer(params_plain, AdamWConfig()).step(
            grads_like(params_plain, 0.0)
        )
        # Zero gradient: only decay moves parameters.
        assert np.all(
            np.abs(params_wd[(0, "q_proj")].a)
            <= np.abs(params_plain[(0, "q_proj")].a) + 1e-12
        )

    def test_step_count_tracks(self):
        params = make_params()
        opt = AdapterOptimizer(params)
        opt.step(grads_like(params))
        opt.step(grads_like(params))
        assert opt.step_count == 2

    def test_zero_grad_no_movement_without_decay(self):
        params = make_params()
        before = params[(0, "q_proj")].b.copy()
        AdapterOptimizer(params).step(grads_like(params, 0.0))
        np.testing.assert_allclose(params[(0, "q_proj")].b, before, atol=1e-12)
