"""Tests for the resumable numeric engine (submit / add_job / remove_job)."""

import numpy as np
import pytest

from repro.core.lora import LoRAConfig
from repro.data.dataset import Sample
from repro.errors import ScheduleError
from repro.models import TINY, TinyLoRATransformer
from repro.runtime import MultiLoRAEngine, NumericJob
from repro.scheduler import Assignment, Microbatch, Schedule


def make_job(aid, n=4, gbs=2, rank=2, seed=0):
    rng = np.random.default_rng((seed, aid))
    streams = [rng.integers(0, TINY.vocab_size, 6) for _ in range(n)]
    return NumericJob(
        adapter_id=aid,
        lora=LoRAConfig(rank=rank, alpha=1.0, dropout=0.0, adapter_id=aid),
        token_streams=streams,
        global_batch_size=gbs,
    )


def batch_mb(job, batch):
    mb = Microbatch(capacity=256, padding_multiple=1)
    for i in job.batch_indices(batch):
        mb.add(Assignment(Sample(job.adapter_id, i,
                                 len(job.token_streams[i])), batch))
    return mb


class TestResumableSubmission:
    def test_submit_reports_completed_steps(self):
        job = make_job(0)
        engine = MultiLoRAEngine(TinyLoRATransformer(TINY), [job])
        completed = engine.submit(batch_mb(job, 0))
        assert len(completed) == 1
        assert completed[0].adapter_id == 0
        assert completed[0].global_batch == 0
        assert completed[0].loss > 0
        assert engine.steps_done(0) == 1

    def test_partial_batch_defers_step(self):
        job = make_job(0, n=4, gbs=4)
        engine = MultiLoRAEngine(TinyLoRATransformer(TINY), [job])
        half = Microbatch(capacity=256, padding_multiple=1)
        for i in (0, 1):
            half.add(Assignment(Sample(0, i, len(job.token_streams[i])), 0))
        assert engine.submit(half) == []
        rest = Microbatch(capacity=256, padding_multiple=1)
        for i in (2, 3):
            rest.add(Assignment(Sample(0, i, len(job.token_streams[i])), 0))
        assert len(engine.submit(rest)) == 1

    def test_submit_sequence_matches_run(self):
        jobs = [make_job(0), make_job(1, gbs=4)]
        stream = [batch_mb(jobs[0], 0), batch_mb(jobs[1], 0),
                  batch_mb(jobs[0], 1)]
        run_model = TinyLoRATransformer(TINY, np.random.default_rng(1))
        MultiLoRAEngine(run_model, [make_job(0), make_job(1, gbs=4)]).run(
            Schedule(microbatches=list(stream))
        )
        submit_model = TinyLoRATransformer(TINY, np.random.default_rng(1))
        engine = MultiLoRAEngine(submit_model, jobs)
        for mb in stream:
            engine.submit(mb)
        for aid in (0, 1):
            p1, p2 = run_model.adapter_state(aid), submit_model.adapter_state(aid)
            for key in p1:
                np.testing.assert_array_equal(p1[key].a, p2[key].a)
                np.testing.assert_array_equal(p1[key].b, p2[key].b)

    def test_out_of_range_batch_rejected(self):
        job = make_job(0, n=2, gbs=2)  # a single global batch
        engine = MultiLoRAEngine(TinyLoRATransformer(TINY), [job])
        engine.submit(batch_mb(job, 0))
        rogue = Microbatch(capacity=256, padding_multiple=1)
        rogue.add(Assignment(Sample(0, 0, len(job.token_streams[0])), 1))
        with pytest.raises(ScheduleError, match="no global batch"):
            engine.submit(rogue)

    def test_noop_is_free(self):
        job = make_job(0)
        engine = MultiLoRAEngine(TinyLoRATransformer(TINY), [job])
        assert engine.submit(Microbatch()) == []
        assert engine.microbatches_executed == 0


class TestJobLifecycle:
    def test_add_job_mid_run(self):
        first = make_job(0)
        engine = MultiLoRAEngine(TinyLoRATransformer(TINY), [first])
        engine.submit(batch_mb(first, 0))
        late = make_job(1)
        engine.add_job(late)
        completed = engine.submit(batch_mb(late, 0))
        assert [c.adapter_id for c in completed] == [1]
        assert engine.steps_done(0) == 1
        assert engine.steps_done(1) == 1

    def test_duplicate_add_rejected(self):
        engine = MultiLoRAEngine(TinyLoRATransformer(TINY), [make_job(0)])
        with pytest.raises(ScheduleError, match="duplicate"):
            engine.add_job(make_job(0))

    def test_remove_keeps_weights_and_history(self):
        job = make_job(0)
        model = TinyLoRATransformer(TINY)
        engine = MultiLoRAEngine(model, [job])
        for b in range(job.num_global_batches()):
            engine.submit(batch_mb(job, b))
        engine.remove_job(0)
        assert 0 in model.adapters  # trained weights survive retirement
        assert engine.steps_done(0) == job.num_global_batches()
        assert len(engine.losses(0)) == job.num_global_batches()
        with pytest.raises(ScheduleError, match="unknown job"):
            engine.submit(batch_mb(job, 0))

    def test_remove_unknown_job_rejected(self):
        engine = MultiLoRAEngine(TinyLoRATransformer(TINY), [make_job(0)])
        with pytest.raises(ScheduleError, match="unknown job"):
            engine.remove_job(7)

    def test_readd_of_retired_adapter_rejected(self):
        # Adapter ids are one-lifecycle identities: re-admitting a retired
        # id would restart a trained adapter with reset optimizer moments.
        job = make_job(0, rank=2)
        engine = MultiLoRAEngine(TinyLoRATransformer(TINY), [job])
        engine.submit(batch_mb(job, 0))
        engine.remove_job(0)
        with pytest.raises(ScheduleError, match="fresh adapter id"):
            engine.add_job(make_job(0, rank=2))
        engine.add_job(make_job(1, rank=2))  # a fresh id is fine

    def test_run_reports_per_call_deltas(self):
        job = make_job(0)  # 2 global batches
        engine = MultiLoRAEngine(TinyLoRATransformer(TINY), [job])
        engine.submit(batch_mb(job, 0))
        result = engine.run(Schedule(microbatches=[batch_mb(job, 1)]))
        assert result.steps == {0: 1}
        assert len(result.losses[0]) == 1
        assert result.microbatches_executed == 1
        assert engine.steps_done(0) == 2  # lifetime total stays queryable


class TestExactAccumulation:
    def test_exact_mode_matches_packed_closely(self):
        # Exact mode changes only the gradient summation association, so
        # the two modes agree to float round-off.
        jobs = [make_job(0, n=4, gbs=2)]
        stream = [batch_mb(jobs[0], 0), batch_mb(jobs[0], 1)]
        packed_model = TinyLoRATransformer(TINY, np.random.default_rng(2))
        MultiLoRAEngine(packed_model, [make_job(0, n=4, gbs=2)]).run(
            Schedule(microbatches=list(stream))
        )
        exact_model = TinyLoRATransformer(TINY, np.random.default_rng(2))
        MultiLoRAEngine(
            exact_model, jobs, exact_accumulation=True
        ).run(Schedule(microbatches=list(stream)))
        for key in packed_model.adapter_state(0):
            np.testing.assert_allclose(
                packed_model.adapter_state(0)[key].a,
                exact_model.adapter_state(0)[key].a,
                atol=1e-10,
            )

    def test_exact_mode_is_packing_order_invariant(self):
        # Reversing the sample order inside a microbatch changes packed
        # accumulation bitwise but not exact accumulation.
        job = make_job(0, n=4, gbs=4)
        forward = batch_mb(job, 0)
        backward = Microbatch(capacity=256, padding_multiple=1)
        for a in reversed(forward.assignments):
            backward.add(a)
        params = {}
        for label, mb in (("fwd", forward), ("bwd", backward)):
            model = TinyLoRATransformer(TINY, np.random.default_rng(3))
            engine = MultiLoRAEngine(model, [make_job(0, n=4, gbs=4)],
                                     exact_accumulation=True)
            engine.submit(mb)
            params[label] = model.adapter_state(0)
        for key in params["fwd"]:
            np.testing.assert_array_equal(
                params["fwd"][key].a, params["bwd"][key].a
            )
            np.testing.assert_array_equal(
                params["fwd"][key].b, params["bwd"][key].b
            )


class TestJobStateMigration:
    """export_job_state / import_job_state: the migration primitive."""

    def finish(self, engine, job, start, stop):
        for batch in range(start, stop):
            engine.submit(batch_mb(job, batch))

    def adapter_params(self, model, aid=0):
        return {
            key: (w.a.copy(), w.b.copy())
            for key, w in model.adapter_state(aid).items()
        }

    def test_mid_flight_round_trip_is_bit_identical(self):
        # Train 3 of 6 batches on engine A, move the job to engine B (a
        # model with the same frozen base weights), finish there: the
        # final adapter must match an unmigrated run bit for bit.
        job = make_job(0, n=12, gbs=2)
        source_model = TinyLoRATransformer(TINY, np.random.default_rng(5))
        source = MultiLoRAEngine(source_model, [make_job(0, n=12, gbs=2)])
        self.finish(source, job, 0, 3)
        state = source.export_job_state(0)
        source.remove_job(0)

        target_model = TinyLoRATransformer(TINY, np.random.default_rng(5))
        target = MultiLoRAEngine(target_model)
        target.import_job_state(make_job(0, n=12, gbs=2), state)
        assert target.steps_done(0) == 3
        self.finish(target, job, 3, 6)

        straight_model = TinyLoRATransformer(TINY, np.random.default_rng(5))
        straight = MultiLoRAEngine(straight_model, [make_job(0, n=12, gbs=2)])
        self.finish(straight, job, 0, 6)

        migrated = self.adapter_params(target_model)
        unmigrated = self.adapter_params(straight_model)
        for key in unmigrated:
            np.testing.assert_array_equal(migrated[key][0], unmigrated[key][0])
            np.testing.assert_array_equal(migrated[key][1], unmigrated[key][1])
        assert target.losses(0) == straight.losses(0)

    def test_export_is_a_snapshot(self):
        job = make_job(0, n=4, gbs=2)
        engine = MultiLoRAEngine(TinyLoRATransformer(TINY), [job])
        engine.submit(batch_mb(job, 0))
        state = engine.export_job_state(0)
        frozen = {k: (a.copy(), b.copy()) for k, (a, b) in state.weights.items()}
        engine.submit(batch_mb(job, 1))  # keep training on the source
        for key in frozen:
            np.testing.assert_array_equal(state.weights[key][0], frozen[key][0])
            np.testing.assert_array_equal(state.weights[key][1], frozen[key][1])

    def test_export_mid_batch_rejected(self):
        job = make_job(0, n=4, gbs=4)
        engine = MultiLoRAEngine(TinyLoRATransformer(TINY), [job])
        half = Microbatch(capacity=256, padding_multiple=1)
        for i in (0, 1):
            half.add(Assignment(Sample(0, i, len(job.token_streams[i])), 0))
        engine.submit(half)
        with pytest.raises(ScheduleError, match="partially-accumulated"):
            engine.export_job_state(0)

    def test_export_unknown_job_rejected(self):
        engine = MultiLoRAEngine(TinyLoRATransformer(TINY))
        with pytest.raises(ScheduleError, match="unknown job"):
            engine.export_job_state(9)

    def test_import_while_live_rejected(self):
        job = make_job(0)
        engine = MultiLoRAEngine(TinyLoRATransformer(TINY), [job])
        state = engine.export_job_state(0)
        with pytest.raises(ScheduleError, match="still live"):
            engine.import_job_state(job, state)

    def test_import_config_mismatch_rejected(self):
        job = make_job(0, rank=2)
        engine = MultiLoRAEngine(TinyLoRATransformer(TINY), [job])
        state = engine.export_job_state(0)
        engine.remove_job(0)
        target = MultiLoRAEngine(TinyLoRATransformer(TINY))
        with pytest.raises(ScheduleError, match="rank|shape|config"):
            target.import_job_state(make_job(0, rank=3), state)

    def test_json_round_trip_preserves_state(self):
        import json

        job = make_job(0, n=6, gbs=2)
        engine = MultiLoRAEngine(TinyLoRATransformer(TINY), [job])
        self.finish(engine, job, 0, 2)
        state = engine.export_job_state(0)
        from repro.runtime import JobState

        rebuilt = JobState.from_dict(json.loads(json.dumps(state.to_dict())))
        assert rebuilt.adapter_id == state.adapter_id
        assert rebuilt.steps_done == state.steps_done
        assert rebuilt.losses == state.losses
        assert rebuilt.optimizer["step_count"] == state.optimizer["step_count"]
        for key in state.weights:
            np.testing.assert_array_equal(
                rebuilt.weights[key][0], state.weights[key][0]
            )
            np.testing.assert_array_equal(
                rebuilt.weights[key][1], state.weights[key][1]
            )
        for key in state.optimizer["moments"]:
            np.testing.assert_array_equal(
                rebuilt.optimizer["moments"][key][0],
                state.optimizer["moments"][key][0],
            )

    def test_migrate_away_and_back(self):
        # A -> B -> A: re-importing an id this engine trained before is
        # allowed (restore is explicit), and stays bit-identical.
        job_spec = lambda: make_job(0, n=8, gbs=2)
        job = job_spec()
        model_a = TinyLoRATransformer(TINY, np.random.default_rng(6))
        engine_a = MultiLoRAEngine(model_a, [job_spec()])
        self.finish(engine_a, job, 0, 1)
        state = engine_a.export_job_state(0)
        engine_a.remove_job(0)

        model_b = TinyLoRATransformer(TINY, np.random.default_rng(6))
        engine_b = MultiLoRAEngine(model_b)
        engine_b.import_job_state(job_spec(), state)
        self.finish(engine_b, job, 1, 2)
        state = engine_b.export_job_state(0)
        engine_b.remove_job(0)

        engine_a.import_job_state(job_spec(), state)
        self.finish(engine_a, job, 2, 4)

        straight_model = TinyLoRATransformer(TINY, np.random.default_rng(6))
        straight = MultiLoRAEngine(straight_model, [job_spec()])
        self.finish(straight, job, 0, 4)
        for key in straight_model.adapter_state(0):
            np.testing.assert_array_equal(
                model_a.adapter_state(0)[key].a,
                straight_model.adapter_state(0)[key].a,
            )
            np.testing.assert_array_equal(
                model_a.adapter_state(0)[key].b,
                straight_model.adapter_state(0)[key].b,
            )
