"""Shared test utilities: numerical gradients and common fixtures."""

from __future__ import annotations

import numpy as np


def numerical_grad(f, x: np.ndarray, eps: float = 1e-6) -> np.ndarray:
    """Central-difference gradient of scalar-valued ``f`` at ``x``."""
    grad = np.zeros_like(x, dtype=np.float64)
    flat = x.reshape(-1)
    grad_flat = grad.reshape(-1)
    for i in range(flat.size):
        orig = flat[i]
        flat[i] = orig + eps
        f_plus = f(x)
        flat[i] = orig - eps
        f_minus = f(x)
        flat[i] = orig
        grad_flat[i] = (f_plus - f_minus) / (2 * eps)
    return grad


def rel_error(a: np.ndarray, b: np.ndarray) -> float:
    """Max relative error between two arrays (safe near zero)."""
    denom = np.maximum(np.abs(a) + np.abs(b), 1e-12)
    return float(np.max(np.abs(a - b) / denom))
