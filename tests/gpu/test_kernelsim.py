"""Tests for the kernel timeline simulator."""

import pytest

from repro.gpu import H100, KernelProfile, KernelTimeline, simulate_kernel_sequence


def make_profiles():
    return [
        KernelProfile("a", flops=1e9, bytes_read=1e6, bytes_written=1e6,
                      category="base_gemm"),
        KernelProfile("b", flops=0.0, bytes_read=5e7, bytes_written=5e7,
                      uses_tensor_cores=False, category="elementwise"),
        KernelProfile("c", flops=2e9, bytes_read=2e6, bytes_written=2e6,
                      category="base_gemm"),
    ]


class TestTimeline:
    def test_kernels_execute_back_to_back(self):
        timeline = simulate_kernel_sequence(make_profiles(), H100)
        kernels = timeline.kernels
        assert kernels[0].start == 0.0
        for prev, cur in zip(kernels, kernels[1:]):
            assert cur.start == pytest.approx(prev.end)

    def test_total_time_is_sum_of_durations(self):
        timeline = simulate_kernel_sequence(make_profiles(), H100)
        assert timeline.total_time == pytest.approx(
            sum(k.duration for k in timeline.kernels)
        )

    def test_totals_aggregate_profiles(self):
        profiles = make_profiles()
        timeline = simulate_kernel_sequence(profiles, H100)
        assert timeline.total_flops() == sum(p.flops for p in profiles)
        assert timeline.total_traffic() == sum(p.bytes_total for p in profiles)

    def test_breakdown_by_category_covers_everything(self):
        timeline = simulate_kernel_sequence(make_profiles(), H100)
        breakdown = timeline.breakdown_by("category")
        assert set(breakdown) == {"base_gemm", "elementwise"}
        assert sum(breakdown.values()) == pytest.approx(timeline.total_time)

    def test_breakdown_fractions_sum_to_one(self):
        timeline = simulate_kernel_sequence(make_profiles(), H100)
        fractions = timeline.breakdown_fractions()
        assert sum(fractions.values()) == pytest.approx(1.0)

    def test_empty_timeline(self):
        timeline = KernelTimeline(H100)
        assert timeline.total_time == 0.0
        assert timeline.breakdown_fractions() == {}

    def test_incremental_launch_matches_bulk(self):
        profiles = make_profiles()
        bulk = simulate_kernel_sequence(profiles, H100)
        inc = KernelTimeline(H100)
        for p in profiles:
            inc.launch(p)
        assert inc.total_time == pytest.approx(bulk.total_time)
