"""Tests for the roofline kernel-time estimator."""

import pytest

from repro.gpu import (
    H100,
    KernelProfile,
    arithmetic_intensity,
    estimate_kernel_time,
    is_memory_bound,
    lora_down_projection_intensity,
)


def gemm(m, k, n, e=2):
    return KernelProfile(
        name="gemm",
        flops=2.0 * m * k * n,
        bytes_read=(m * k + k * n) * e,
        bytes_written=m * n * e,
    )


class TestArithmeticIntensity:
    def test_big_gemm_is_compute_bound_on_h100(self):
        profile = gemm(8192, 4096, 4096)
        assert not is_memory_bound(profile, H100)

    def test_lora_down_projection_is_memory_bound(self):
        # X_hat(8192,4096) @ A(4096,16): Section 3.1's bottleneck example.
        profile = gemm(8192, 4096, 16)
        assert is_memory_bound(profile, H100)

    def test_equation_2_closed_form(self):
        # I = 1 / (1/r + 1/n + 1/m) from the paper.  The formula is per
        # *byte* in half precision: 2*m*n*r flops over 2*(mn + nr + mr)
        # bytes, with the MAC factor 2 cancelling the element size.
        m, n, r = 8192, 4096, 16
        closed_form = lora_down_projection_intensity(m, n, r)
        profile = gemm(m, n, r)
        assert arithmetic_intensity(profile) == pytest.approx(closed_form, rel=1e-9)

    def test_intensity_far_below_machine_balance(self):
        # The paper: I << B (~295) for any realistic r.
        assert lora_down_projection_intensity(8192, 4096, 32) < 32
        assert H100.machine_balance() > 290

    def test_zero_traffic_profile_has_infinite_intensity(self):
        profile = KernelProfile("noop", flops=10.0, bytes_read=0, bytes_written=0)
        assert arithmetic_intensity(profile) == float("inf")


class TestEstimateKernelTime:
    def test_compute_bound_time_tracks_flops(self):
        small = gemm(2048, 4096, 4096)
        large = gemm(8192, 4096, 4096)
        t_small = estimate_kernel_time(small, H100, include_launch=False)
        t_large = estimate_kernel_time(large, H100, include_launch=False)
        assert t_large == pytest.approx(4 * t_small, rel=0.05)

    def test_memory_bound_time_tracks_bytes(self):
        p1 = KernelProfile("ew", flops=1e6, bytes_read=1e8, bytes_written=1e8,
                           uses_tensor_cores=False)
        p2 = KernelProfile("ew", flops=1e6, bytes_read=2e8, bytes_written=2e8,
                           uses_tensor_cores=False)
        t1 = estimate_kernel_time(p1, H100, include_launch=False)
        t2 = estimate_kernel_time(p2, H100, include_launch=False)
        assert t2 == pytest.approx(2 * t1, rel=1e-6)

    def test_launch_overhead_included_by_default(self):
        p = KernelProfile("tiny", flops=0.0, bytes_read=16, bytes_written=16)
        t = estimate_kernel_time(p, H100)
        assert t >= H100.kernel_launch_us * 1e-6

    def test_efficiency_scales_slow_the_kernel(self):
        base = gemm(8192, 4096, 4096)
        slowed = KernelProfile(
            name="gemm",
            flops=base.flops,
            bytes_read=base.bytes_read,
            bytes_written=base.bytes_written,
            gemm_efficiency_scale=0.5,
        )
        assert estimate_kernel_time(slowed, H100) > estimate_kernel_time(base, H100)

    def test_extra_latency_is_added(self):
        p = KernelProfile("sync", flops=0, bytes_read=0, bytes_written=0,
                          extra_latency_us=100.0)
        t = estimate_kernel_time(p, H100, include_launch=False)
        assert t == pytest.approx(100e-6, rel=1e-9)

    def test_elementwise_uses_cuda_core_rate(self):
        # Same flops, but CUDA-core rate is far below tensor-core rate, so a
        # flops-heavy elementwise kernel must be slower.
        flops = 1e12
        tc = KernelProfile("tc", flops=flops, bytes_read=1, bytes_written=1)
        ew = KernelProfile("ew", flops=flops, bytes_read=1, bytes_written=1,
                           uses_tensor_cores=False)
        assert estimate_kernel_time(ew, H100) > estimate_kernel_time(tc, H100)


class TestScaled:
    def test_scaled_preserves_metadata(self):
        p = KernelProfile("k", 10.0, 20.0, 30.0, uses_tensor_cores=False,
                          category="elementwise", mem_efficiency_scale=0.5)
        q = p.scaled(2.0)
        assert q.flops == 20.0
        assert q.bytes_read == 40.0
        assert q.category == "elementwise"
        assert q.mem_efficiency_scale == 0.5
