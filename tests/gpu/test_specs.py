"""Tests for GPU specs and the machine-balance claim of Section 3.1."""

import pytest

from repro.gpu import BYTES_PER_ELEMENT, GPUSpec, H100, L40S, get_gpu, list_gpus


class TestRegistry:
    def test_h100_lookup(self):
        assert get_gpu("h100") is H100

    def test_lookup_is_case_insensitive(self):
        assert get_gpu("H100") is H100

    def test_unknown_gpu_raises(self):
        with pytest.raises(KeyError, match="unknown GPU"):
            get_gpu("tpu-v5")

    def test_list_gpus_contains_paper_devices(self):
        keys = list_gpus()
        for key in ("h100", "l40s", "a100-sxm", "a100-pcie", "rtx3090"):
            assert key in keys


class TestMachineBalance:
    def test_h100_fp16_balance_matches_paper(self):
        # Section 3.1: "~295 for FP16 on NVIDIA H100 GPUs".
        assert H100.machine_balance("fp16") == pytest.approx(295.0, rel=0.01)

    def test_l40s_balance_lower_than_h100(self):
        # L40S has a lower compute-to-bandwidth ratio; the paper notes lower
        # ratios yield smaller fusion gains.
        assert L40S.machine_balance("fp16") < H100.machine_balance("fp16")

    def test_unknown_dtype_raises(self):
        with pytest.raises(KeyError, match="no tensor-core rate"):
            H100.peak_flops("int4")


class TestDerivedRates:
    def test_effective_rates_below_peak(self):
        assert H100.effective_flops() < H100.peak_flops()
        assert H100.effective_bandwidth() < H100.peak_bandwidth()

    def test_with_overrides_returns_new_spec(self):
        tweaked = H100.with_overrides(mem_efficiency=0.5)
        assert tweaked.mem_efficiency == 0.5
        assert H100.mem_efficiency != 0.5
        assert isinstance(tweaked, GPUSpec)

    def test_bytes_per_element_covers_training_dtypes(self):
        assert BYTES_PER_ELEMENT["fp16"] == 2
        assert BYTES_PER_ELEMENT["bf16"] == 2
        assert BYTES_PER_ELEMENT["fp32"] == 4
        assert BYTES_PER_ELEMENT["bool"] == 1
