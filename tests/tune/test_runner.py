"""Tests for the tune/evaluate/recommend loop and the JSON artifact."""

import json
import math

import pytest

from repro.data import synthetic_dataset
from repro.errors import ScheduleError
from repro.gpu import H100
from repro.models.config import LLAMA3_8B
from repro.models.layer_costs import LayerCostModel
from repro.scheduler import AdapterJob, SchedulerConfig
from repro.serve import ServeConfig, ServeJob
from repro.tune import (
    SearchSpace,
    SLOTarget,
    dominates,
    evaluate,
    front_to_json,
    recommend,
    tune,
)

COST = LayerCostModel(LLAMA3_8B, H100, strategy="fused_multi")
SCHED = SchedulerConfig(capacity=8192, num_stages=2, use_milp=False)
DATASETS = ("xsum", "cnn_dailymail", "wikisum", "mixed")

SPACE = SearchSpace(
    fleet_sizes=(1, 2),
    routings=("round_robin", "cost_aware"),
    orderings=("fcfs", "srpt"),
    deadline_gates=(False, True),
)


def make_trace(num_jobs=5, spacing=0.2, deadline_every=2, seed=3):
    jobs = []
    for adapter in range(num_jobs):
        job = AdapterJob(
            adapter,
            synthetic_dataset(adapter, DATASETS[adapter % 4], 8, seed=seed),
            global_batch_size=4,
        )
        deadline = None
        if deadline_every and adapter % deadline_every == 0:
            deadline = adapter * spacing + 4.0
        jobs.append(
            ServeJob(job, arrival_time=adapter * spacing, deadline=deadline)
        )
    return jobs


@pytest.fixture(scope="module")
def trace():
    return make_trace()


@pytest.fixture(scope="module")
def report(trace):
    return tune(trace, SPACE, cost=COST, scheduler=SCHED)


class TestEvaluate:
    def test_fixed_fleet_bills_replicas_times_makespan(self, trace):
        config = ServeConfig(num_replicas=2, routing="round_robin")
        point, result = evaluate(config, trace, cost=COST, scheduler=SCHED)
        assert point.gpu_seconds == pytest.approx(2 * result.makespan)
        assert point.dollars == pytest.approx(point.gpu_seconds / 3600.0 * 6.0)
        assert point.mean_jct == pytest.approx(result.mean_completion_time())
        assert point.goodput == result.deadline_goodput()

    def test_autoscaled_run_uses_the_recorded_bill(self, trace):
        config = ServeConfig(
            num_replicas=1, autoscale_budget=30.0, routing="round_robin"
        )
        point, result = evaluate(config, trace, cost=COST, scheduler=SCHED)
        assert result.replica_intervals
        assert point.gpu_seconds == pytest.approx(result.gpu_seconds)
        assert point.dollars == pytest.approx(result.dollars_spent)

    def test_nothing_finished_ranks_worst_not_best(self):
        # Every arrival carries a hopeless deadline; the gate sheds
        # them all and the metrics layer would report 0.0 JCT.
        doomed = [
            ServeJob(job.job, job.arrival_time, deadline=job.arrival_time + 1e-6)
            for job in make_trace(num_jobs=3, deadline_every=1)
        ]
        config = ServeConfig(deadline_gate=True)
        point, result = evaluate(config, doomed, cost=COST, scheduler=SCHED)
        assert result.rejections() == 3
        assert math.isinf(point.mean_jct)

    def test_replay_is_deterministic(self, trace):
        config = ServeConfig(num_replicas=2, ordering="srpt")
        first, _ = evaluate(config, trace, cost=COST, scheduler=SCHED)
        second, _ = evaluate(config, trace, cost=COST, scheduler=SCHED)
        assert first == second


class TestTune:
    def test_rejects_empty_inputs(self, trace):
        with pytest.raises(ScheduleError, match="non-empty trace"):
            tune([], SPACE, cost=COST, scheduler=SCHED)

    def test_accounting_adds_up(self, report):
        assert report.candidates == 16
        assert (
            report.collapsed + report.pruned + report.simulated
            == report.candidates
        )
        assert report.simulated == len(report.trials)

    def test_front_is_mutually_non_dominated(self, report):
        for a in report.front:
            for b in report.front:
                assert not dominates(a.point, b.point)

    def test_front_is_cheapest_first(self, report):
        dollars = [t.point.dollars for t in report.front]
        assert dollars == sorted(dollars)

    def test_every_front_config_is_canonical_and_rebuildable(self, report):
        for trial in report.front:
            rebuilt = ServeConfig.from_dict(trial.config.to_dict())
            assert rebuilt == trial.config
            rebuilt.build(COST, SCHED)


class TestArtifact:
    def test_renders_bit_identically_across_runs(self, trace, report):
        again = tune(trace, SPACE, cost=COST, scheduler=SCHED)
        assert front_to_json(report) == front_to_json(again)

    def test_document_shape(self, report):
        doc = json.loads(front_to_json(report))
        assert doc["objectives"] == {
            "minimize": ["mean_jct", "dollars"],
            "maximize": ["goodput"],
        }
        assert doc["search"]["candidates"] == 16
        assert len(doc["front"]) == len(report.front)
        for entry, trial in zip(doc["front"], report.front):
            assert entry["label"] == trial.config.label()
            assert ServeConfig.from_dict(entry["config"]) == trial.config

    def test_ends_in_exactly_one_newline(self, report):
        text = front_to_json(report)
        assert text.endswith("\n") and not text.endswith("\n\n")


class TestSLOTarget:
    def test_unconstrained_target_is_always_met(self, report):
        assert all(SLOTarget().met_by(t.point) for t in report.front)

    def test_violation_scales_with_shortfall(self):
        slo = SLOTarget(max_mean_jct=1.0, min_goodput=4)
        from repro.tune import ObjectivePoint

        near = ObjectivePoint(mean_jct=1.1, goodput=3, dollars=1.0, gpu_seconds=1.0)
        far = ObjectivePoint(mean_jct=3.0, goodput=0, dollars=1.0, gpu_seconds=1.0)
        assert 0.0 < slo.violation(near) < slo.violation(far)
        starved = ObjectivePoint(
            mean_jct=math.inf, goodput=0, dollars=0.0, gpu_seconds=0.0
        )
        assert math.isinf(slo.violation(starved))

    @pytest.mark.parametrize(
        "kwargs",
        [{"max_mean_jct": 0.0}, {"min_goodput": -1}, {"max_dollars": -2.0}],
    )
    def test_invalid_targets_rejected(self, kwargs):
        with pytest.raises(ScheduleError):
            SLOTarget(**kwargs)


class TestRecommend:
    def test_loose_slo_yields_cheapest_front_entry(self, trace, report):
        pick = recommend(
            trace, SLOTarget(), cost=COST, scheduler=SCHED, space=SPACE
        )
        assert pick.feasible
        assert pick.point.dollars == report.front[0].point.dollars

    def test_tight_slo_reports_infeasible_with_closest_point(self, trace):
        impossible = SLOTarget(max_dollars=1e-9)
        pick = recommend(
            trace, impossible, cost=COST, scheduler=SCHED, space=SPACE
        )
        assert not pick.feasible
        assert pick.point.dollars == min(
            t.point.dollars for t in pick.report.front
        )

    def test_goodput_slo_steers_the_pick(self, trace, report):
        best = max(t.point.goodput for t in report.front)
        pick = recommend(
            trace,
            SLOTarget(min_goodput=best),
            cost=COST,
            scheduler=SCHED,
            space=SPACE,
        )
        assert pick.feasible
        assert pick.point.goodput >= best
