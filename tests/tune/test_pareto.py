"""Tests for Pareto dominance, fronts, and the JSON artifact contract."""

import json
import math

import pytest

from repro.tune import ObjectivePoint, dominates, pareto_front
from repro.tune.report import point_as_dict


def pt(jct, goodput, dollars, gpu=None):
    return ObjectivePoint(
        mean_jct=jct,
        goodput=goodput,
        dollars=dollars,
        gpu_seconds=dollars * 600.0 if gpu is None else gpu,
    )


class TestDominates:
    def test_strictly_better_everywhere(self):
        assert dominates(pt(1.0, 5, 2.0), pt(2.0, 4, 3.0))

    def test_better_on_one_axis_equal_elsewhere(self):
        assert dominates(pt(1.0, 5, 2.0), pt(1.0, 4, 2.0))

    def test_equal_points_do_not_dominate(self):
        assert not dominates(pt(1.0, 5, 2.0), pt(1.0, 5, 2.0))

    def test_trade_off_is_incomparable(self):
        cheap_slow = pt(9.0, 5, 1.0)
        fast_dear = pt(1.0, 5, 9.0)
        assert not dominates(cheap_slow, fast_dear)
        assert not dominates(fast_dear, cheap_slow)

    def test_goodput_is_maximized(self):
        assert dominates(pt(1.0, 6, 2.0), pt(1.0, 5, 2.0))
        assert not dominates(pt(1.0, 4, 2.0), pt(1.0, 5, 2.0))

    def test_infinite_jct_is_worst(self):
        served = pt(100.0, 0, 5.0)
        starved = pt(math.inf, 0, 5.0)
        assert dominates(served, starved)
        assert not dominates(starved, served)

    def test_gpu_seconds_carry_no_dominance(self):
        a = pt(1.0, 5, 2.0, gpu=999.0)
        b = pt(1.0, 5, 2.0, gpu=1.0)
        assert not dominates(a, b) and not dominates(b, a)


class TestParetoFront:
    def test_single_point_is_the_front(self):
        assert pareto_front([pt(1.0, 1, 1.0)], lambda p: p) == [pt(1.0, 1, 1.0)]

    def test_dominated_points_drop(self):
        best = pt(1.0, 5, 1.0)
        worse = pt(2.0, 4, 2.0)
        assert pareto_front([worse, best], lambda p: p) == [best]

    def test_incomparable_points_all_survive_in_order(self):
        a, b = pt(9.0, 5, 1.0), pt(1.0, 5, 9.0)
        assert pareto_front([a, b], lambda p: p) == [a, b]

    def test_duplicate_points_all_survive(self):
        twin_a = ("a", pt(1.0, 5, 2.0))
        twin_b = ("b", pt(1.0, 5, 2.0))
        front = pareto_front([twin_a, twin_b], lambda item: item[1])
        assert front == [twin_a, twin_b]

    def test_front_of_a_chain_is_its_minimum(self):
        chain = [pt(float(k), 0, float(k)) for k in range(5, 0, -1)]
        assert pareto_front(chain, lambda p: p) == [pt(1.0, 0, 1.0)]


class TestPointAsDict:
    def test_round_trips_through_json(self):
        doc = json.loads(json.dumps(point_as_dict(pt(1.25, 3, 0.5))))
        assert doc == {
            "mean_jct": 1.25,
            "goodput": 3,
            "dollars": 0.5,
            "gpu_seconds": 300.0,
        }

    def test_infinity_maps_to_none(self):
        doc = point_as_dict(pt(math.inf, 0, 1.0))
        assert doc["mean_jct"] is None

    @pytest.mark.parametrize("noise", [1e-9, -1e-9])
    def test_sub_precision_noise_rounds_away(self, noise):
        assert point_as_dict(pt(1.0 + noise, 0, 1.0)) == point_as_dict(
            pt(1.0, 0, 1.0)
        )
