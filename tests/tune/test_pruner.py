"""Property tests for the analytic pruner: it must never cost us a front.

Two claims back the tuner's funnel, each checked against brute force on
small randomized traces:

1. :func:`~repro.tune.pruner.canonical` collapses are *exact*: a config
   and its representative replay to identical objective points.
2. Bound-dominance pruning is *front-preserving*: ``tune(prune=True)``
   and ``tune(prune=False)`` produce the same Pareto front as a set of
   objective points (configs may differ -- equal points are
   interchangeable on a front).
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data import synthetic_dataset
from repro.gpu import H100
from repro.models.config import LLAMA3_8B
from repro.models.layer_costs import LayerCostModel
from repro.scheduler import AdapterJob, SchedulerConfig
from repro.serve import CostEstimator, ServeConfig, ServeJob
from repro.tune import (
    SearchSpace,
    TraceSummary,
    canonical,
    evaluate,
    optimistic_point,
    tune,
)

COST = LayerCostModel(LLAMA3_8B, H100, strategy="fused_multi")
SCHED = SchedulerConfig(capacity=8192, num_stages=2, use_milp=False)
DATASETS = ("xsum", "cnn_dailymail", "wikisum", "mixed")

# Small but heterogeneous: two fleet sizes, two routing families, two
# ordering families, the gate on/off -- 16 raw candidates per example.
SPACE = SearchSpace(
    fleet_sizes=(1, 2),
    routings=("round_robin", "cost_aware"),
    orderings=("fcfs", "srpt"),
    deadline_gates=(False, True),
)


@st.composite
def traces(draw):
    """A few jobs with random sizes, spacings, and deadline tightness."""
    seed = draw(st.integers(min_value=0, max_value=9))
    num_jobs = draw(st.integers(min_value=2, max_value=4))
    spacing = draw(st.sampled_from([0.0, 0.2, 1.0]))
    jobs = []
    for adapter in range(num_jobs):
        samples = draw(st.sampled_from([4, 8]))
        job = AdapterJob(
            adapter,
            synthetic_dataset(adapter, DATASETS[adapter % 4], samples, seed=seed),
            global_batch_size=4,
        )
        tightness = draw(st.sampled_from([None, 0.2, 1.0, 5.0]))
        deadline = None
        if tightness is not None:
            # Anchor tightness to the job's own priced solo time so the
            # draw spans doomed, marginal, and comfortable deadlines.
            pricer = CostEstimator.for_scheduler(COST, SCHED)
            deadline = adapter * spacing + tightness * pricer.job_seconds(job)
        jobs.append(
            ServeJob(job, arrival_time=adapter * spacing, deadline=deadline)
        )
    return jobs


def point_set(report):
    return {
        (t.point.mean_jct, t.point.goodput, round(t.point.dollars, 9))
        for t in report.front
    }


@settings(max_examples=6, deadline=None, derandomize=True)
@given(trace=traces())
def test_pruned_front_matches_brute_force_front(trace):
    pruned = tune(trace, SPACE, cost=COST, scheduler=SCHED)
    brute = tune(trace, SPACE, cost=COST, scheduler=SCHED, prune=False)
    assert pruned.candidates == brute.candidates
    assert brute.pruned == 0
    assert point_set(pruned) == point_set(brute)


@settings(max_examples=6, deadline=None, derandomize=True)
@given(
    trace=traces(),
    config=st.builds(
        ServeConfig,
        num_replicas=st.sampled_from([1, 2]),
        routing=st.sampled_from(["round_robin", "cost_aware"]),
        ordering=st.sampled_from(["fcfs", "srpt"]),
        preemptive=st.booleans(),
        deadline_gate=st.booleans(),
    ),
)
def test_canonical_collapse_is_behaviorally_exact(trace, config):
    has_deadlines = any(j.deadline is not None for j in trace)
    representative = canonical(config, has_deadlines)
    original, _ = evaluate(config, trace, cost=COST, scheduler=SCHED)
    collapsed, _ = evaluate(representative, trace, cost=COST, scheduler=SCHED)
    assert original == collapsed


def test_packing_collapses_only_on_singleton_traces():
    config = ServeConfig(packing="knapsack")
    assert canonical(config, False, multi_tenant=False).packing == "arrival"
    assert canonical(config, False, multi_tenant=True).packing == "knapsack"
    # Default keeps the axis (the conservative choice).
    assert canonical(config, False).packing == "knapsack"


@settings(max_examples=4, deadline=None, derandomize=True)
@given(trace=traces())
def test_single_tenant_packing_collapse_is_behaviorally_exact(trace):
    # Exactness of the singleton-trace identity: a knapsack config and
    # its arrival-order representative replay to identical points.
    solo = [trace[0]]
    config = ServeConfig(packing="knapsack", routing="packing_affinity")
    representative = canonical(config, False, multi_tenant=False)
    assert representative.packing == "arrival"
    original, _ = evaluate(config, solo, cost=COST, scheduler=SCHED)
    collapsed, _ = evaluate(representative, solo, cost=COST, scheduler=SCHED)
    assert original == collapsed


@settings(max_examples=6, deadline=None, derandomize=True)
@given(trace=traces())
def test_optimistic_point_lower_bounds_every_simulated_run(trace):
    pricer = CostEstimator.for_scheduler(COST, SCHED)
    summary = TraceSummary.from_trace(trace, pricer)
    for config in SPACE.candidates():
        bound = optimistic_point(config, summary)
        actual, _ = evaluate(config, trace, cost=COST, scheduler=SCHED)
        assert bound.mean_jct <= actual.mean_jct
        assert bound.goodput >= actual.goodput
        assert bound.dollars <= actual.dollars + 1e-12
        assert bound.gpu_seconds <= actual.gpu_seconds + 1e-9
