"""Tests for ServeConfig bundles and search-space enumeration."""

import itertools

import pytest

from repro.errors import ScheduleError
from repro.serve import ServeConfig
from repro.tune import (
    NON_SEARCH_FIELDS,
    SearchSpace,
    default_space,
    single_policy_defaults,
)


class TestServeConfig:
    def test_round_trips_through_dict(self):
        config = ServeConfig(
            num_replicas=3,
            routing="cost_aware",
            ordering="deadline",
            preemptive=True,
            deadline_gate=True,
            queueing_aware=True,
            migration_time_threshold=2.0,
            drain_then_migrate=True,
            autoscale_budget=40.0,
            calibrated=True,
        )
        assert ServeConfig.from_dict(config.to_dict()) == config

    def test_from_dict_rejects_unknown_fields(self):
        with pytest.raises(ScheduleError, match="unknown ServeConfig fields"):
            ServeConfig.from_dict({"routing": "cost_aware", "turbo": True})

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"num_replicas": 0},
            {"routing": "random"},
            {"ordering": "lifo"},
            {"ordering": "fcfs", "aging_rate": 1.0},
            {"aging_rate": -1.0},
            {"slots": 0},
            {"gate_slack": 0.0},
            {"queueing_aware": True},  # gate off
            {"window_batches": 0},
            {"migration_time_threshold": 0.0},
            {"drain_then_migrate": True},  # no trigger
            {"autoscale_budget": 0.0},
            {"num_replicas": 4, "autoscale_budget": 6.0},  # fleet unaffordable
        ],
    )
    def test_invalid_bundles_are_rejected(self, kwargs):
        with pytest.raises(ScheduleError):
            ServeConfig(**kwargs)

    # One non-default value per field (plus the companions validation
    # demands), so the round-trip test below touches every field the
    # bundle will ever serialize -- a new field cannot land without a
    # round-trip entry.
    NON_DEFAULTS = {
        "num_replicas": {"num_replicas": 3},
        "routing": {"routing": "cost_aware"},
        "ordering": {"ordering": "deadline"},
        "preemptive": {"preemptive": True},
        "aging_rate": {"ordering": "srpt", "aging_rate": 0.5},
        "slots": {"slots": 5},
        "deadline_gate": {"deadline_gate": True},
        "gate_slack": {"deadline_gate": True, "gate_slack": 1.3},
        "queueing_aware": {"deadline_gate": True, "queueing_aware": True},
        "window_batches": {"window_batches": 4},
        "adaptive_window": {"adaptive_window": True},
        "migration_time_threshold": {"migration_time_threshold": 2.5},
        "drain_then_migrate": {
            "migration_time_threshold": 2.5,
            "drain_then_migrate": True,
        },
        "autoscale_budget": {"autoscale_budget": 40.0},
        "calibrated": {"calibrated": True},
        "packing": {"packing": "knapsack"},
        "gateway_rate": {"gateway_rate": 2.5},
        "gateway_burst": {"gateway_burst": 7.0},
        "gateway_queue_bound": {"gateway_queue_bound": 12},
        "gateway_fairness": {"gateway_fairness": 0.35},
        "gateway_hold": {"gateway_hold": 0.75},
    }

    def test_every_config_field_has_a_round_trip_entry(self):
        assert set(self.NON_DEFAULTS) == set(ServeConfig.__dataclass_fields__)

    @pytest.mark.parametrize("field", sorted(NON_DEFAULTS))
    def test_round_trip_and_label_are_stable_per_field(self, field):
        import json

        kwargs = self.NON_DEFAULTS[field]
        config = ServeConfig(**kwargs)
        assert getattr(config, field) != ServeConfig.__dataclass_fields__[
            field
        ].default
        rebuilt = ServeConfig.from_dict(config.to_dict())
        assert rebuilt == config
        # label() must be byte-for-byte stable across the round trip --
        # artifacts key on it -- and survive a JSON round trip too.
        assert rebuilt.label() == config.label()
        json_rebuilt = ServeConfig.from_dict(
            json.loads(json.dumps(config.to_dict()))
        )
        assert json_rebuilt == config
        assert json_rebuilt.label() == config.label()

    def test_gateway_knobs_are_label_visible(self):
        # Two bundles differing only in a gateway knob must label apart,
        # or a deployed gateway's artifact would alias the plain one.
        base = ServeConfig()
        for field in (
            "gateway_rate",
            "gateway_queue_bound",
            "gateway_fairness",
            "gateway_hold",
        ):
            assert ServeConfig(**self.NON_DEFAULTS[field]).label() != base.label()

    def test_label_is_distinct_across_knobs(self):
        configs = [
            ServeConfig(),
            ServeConfig(num_replicas=2),
            ServeConfig(ordering="srpt"),
            ServeConfig(deadline_gate=True),
            ServeConfig(deadline_gate=True, queueing_aware=True),
            ServeConfig(adaptive_window=True),
            ServeConfig(migration_time_threshold=1.5, drain_then_migrate=True),
            ServeConfig(autoscale_budget=30.0, calibrated=True),
        ]
        labels = [c.label() for c in configs]
        assert len(set(labels)) == len(labels)


class TestSearchSpace:
    def test_default_axes_describe_one_config(self):
        assert SearchSpace().candidates() == [ServeConfig()]

    def test_product_counting_excludes_invalid_combos(self):
        space = SearchSpace(
            orderings=("fcfs", "srpt"),
            aging_rates=(0.0, 0.5),
            deadline_gates=(False, True),
            queueing_aware=(False, True),
        )
        # fcfs drops the aging axis (2 of 8 ordering/aging combos gone),
        # and the ungated half drops the queueing axis.
        assert len(space.candidates()) == (2 * 2 - 1) * (2 * 2 - 1)

    def test_drain_requires_a_trigger(self):
        space = SearchSpace(
            rebalance_thresholds=(None, 2.0), drains=(False, True)
        )
        candidates = space.candidates()
        assert len(candidates) == 3
        assert all(
            c.migration_time_threshold is not None
            for c in candidates
            if c.drain_then_migrate
        )

    def test_enumeration_is_deterministic_odometer_order(self):
        space = default_space()
        first, second = space.candidates(), space.candidates()
        assert first == second
        fleets = [c.num_replicas for c in first]
        # Odometer: the first axis changes slowest.
        assert fleets == sorted(fleets)

    def test_default_space_size(self):
        assert len(default_space().candidates()) == 72

    def test_axes_cover_every_config_field(self):
        # Every ServeConfig field is either a search axis or an explicit
        # member of the non-searched set (the gateway door knobs, which
        # trace replay never exercises) -- a new field cannot land
        # without a conscious decision either way.
        axes = default_space().axes()
        fields = set(ServeConfig.__dataclass_fields__)
        assert NON_SEARCH_FIELDS <= fields
        assert len(axes) == len(fields - NON_SEARCH_FIELDS)
        for values in axes.values():
            assert isinstance(values, tuple) and values

    def test_non_search_fields_keep_their_defaults(self):
        for config in default_space().candidates():
            for name in NON_SEARCH_FIELDS:
                default = ServeConfig.__dataclass_fields__[name].default
                assert getattr(config, name) == default

    def test_every_candidate_is_buildable(self):
        # Validation already ran in __post_init__; spot-check the
        # product respects pairwise constraints too.
        for config in itertools.islice(default_space().candidates(), 0, None, 7):
            assert not (config.ordering == "fcfs" and config.aging_rate)
            assert config.deadline_gate or not config.queueing_aware


class TestSinglePolicyDefaults:
    def test_exactly_one_knob_differs_from_baseline(self):
        defaults = single_policy_defaults()
        base = defaults["baseline"].to_dict()
        for name, config in defaults.items():
            if name == "baseline":
                continue
            diff = {
                field
                for field, value in config.to_dict().items()
                if base[field] != value
            }
            assert len(diff) == 1, f"{name} changes {sorted(diff)}"

    def test_defaults_share_fleet_size(self):
        defaults = single_policy_defaults(fleet_size=3)
        assert {c.num_replicas for c in defaults.values()} == {3}
